// The unified Collective API: registry semantics (lookup, duplicate
// rejection, capability validation), the two new first-class algorithms
// (Ok-Topk and the count-sketch reducer) against reference_reduce, the
// full zoo cross-product over {ideal switch, two-tier 8:1} fabrics, and
// the online per-tensor selector.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/oktopk.h"
#include "baselines/sketch_reducer.h"
#include "baselines/zoo.h"
#include "core/algorithm.h"
#include "core/selector.h"
#include "sim/rng.h"
#include "tensor/coo.h"
#include "tensor/generators.h"

namespace omr {
namespace {

using tensor::DenseTensor;

std::vector<DenseTensor> inputs(std::size_t workers, std::size_t n,
                                double sparsity, std::uint64_t seed,
                                tensor::OverlapMode mode =
                                    tensor::OverlapMode::kRandom) {
  sim::Rng rng(seed);
  return tensor::make_multi_worker(workers, n, 256, sparsity, mode, rng);
}

core::ClusterSpec flat() {
  baselines::register_zoo();
  return core::ClusterSpec{};
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(Registry, UnknownNameThrowsNamingTheCatalogue) {
  auto ts = inputs(2, 512, 0.5, 1);
  try {
    core::run_collective("no_such_algorithm", ts, {}, flat());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown collective algorithm 'no_such_algorithm'"),
              std::string::npos)
        << what;
    // The message lists the registered names so typos are self-diagnosing.
    EXPECT_NE(what.find("ring"), std::string::npos) << what;
    EXPECT_NE(what.find("omnireduce"), std::string::npos) << what;
  }
}

TEST(Registry, ContainsTheFullZoo) {
  flat();
  const auto names = core::CollectiveRegistry::global().names();
  for (const char* expected :
       {"omnireduce", "omnireduce_kv", "omnireduce_bucketed", "hierarchical",
        "switchml", "ring", "recursive_doubling", "agsparse", "agsparse_gloo",
        "agsparse_compressed", "sparcml", "sparcml_ssar", "sparcml_dsar",
        "ps", "ps_sparse", "parallax", "oktopk", "sketch"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << expected;
  }
}

class DummyAlgo final : public core::CollectiveAlgorithm {
 public:
  explicit DummyAlgo(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  core::AlgoCapabilities capabilities() const override { return {}; }
  core::RunStats run(std::vector<DenseTensor>&, const core::Config&,
                     const core::ClusterSpec&) override {
    return {};
  }

 private:
  std::string name_;
};

TEST(Registry, DuplicateRegistrationThrows) {
  flat();  // each gtest case is its own process; make sure the zoo is in
  auto& reg = core::CollectiveRegistry::global();
  reg.register_algorithm(std::make_unique<DummyAlgo>("test_dummy"));
  EXPECT_THROW(
      reg.register_algorithm(std::make_unique<DummyAlgo>("test_dummy")),
      std::invalid_argument);
  EXPECT_THROW(reg.register_algorithm(std::make_unique<DummyAlgo>("ring")),
               std::invalid_argument);
}

TEST(Registry, CapabilityValidationRejectsUnsupportedRequests) {
  auto ts = inputs(4, 512, 0.5, 2);
  // Flat analytic ring: no loss model, no two-tier awareness.
  core::ClusterSpec lossy = flat();
  lossy.fabric.loss_rate = 0.01;
  EXPECT_THROW(core::run_collective("ring", ts, {}, lossy),
               std::invalid_argument);
  core::ClusterSpec two_tier = flat();
  two_tier.topology = core::TopologySpec::two_tier_racks(2, 8.0);
  EXPECT_THROW(core::run_collective("ring", ts, {}, two_tier),
               std::invalid_argument);
  core::ClusterSpec faulty = flat();
  faulty.faults.stragglers.mean_delay_ns = 1000.0;
  EXPECT_THROW(core::run_collective("ring", ts, {}, faulty),
               std::invalid_argument);
  // Sparse KV is sum-only.
  core::Config max_op;
  max_op.op = core::ReduceOp::kMax;
  EXPECT_THROW(core::run_collective("omnireduce_kv", ts, max_op, flat()),
               std::invalid_argument);
  // The engine supports all of the above.
  EXPECT_TRUE(core::capabilities_allow(
      core::CollectiveRegistry::global().at("omnireduce").capabilities(), {},
      lossy));
  EXPECT_FALSE(core::capabilities_allow(
      core::CollectiveRegistry::global().at("ring").capabilities(), {},
      lossy));
}

// ---------------------------------------------------------------------------
// Ok-Topk
// ---------------------------------------------------------------------------

TEST(OkTopk, ExactWhenKeepingEveryEntry) {
  for (std::size_t workers : {2u, 4u, 5u}) {
    auto ts = inputs(workers, 4096, 0.9, 10 + workers);
    const core::RunStats st =
        core::run_collective("oktopk", ts, {}, flat());
    EXPECT_TRUE(st.verified) << workers << " workers";
    EXPECT_GT(st.completion_time, 0);
  }
}

TEST(OkTopk, BalancedPartitionsUnderClusteredSparsity) {
  // All non-zeros clustered into shared blocks: index-range partitioning
  // would send everything to one owner; balanced partitioning must not.
  auto ts = inputs(4, 1 << 14, 0.9, 20, tensor::OverlapMode::kAll);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : ts) coo.push_back(tensor::dense_to_coo(t));
  const auto r = baselines::oktopk_allreduce(coo, {}, {});
  ASSERT_EQ(r.partition_pairs.size(), 4u);
  std::size_t total = 0, max_pairs = 0;
  for (std::size_t p : r.partition_pairs) {
    total += p;
    max_pairs = std::max(max_pairs, p);
  }
  ASSERT_GT(total, 0u);
  const double mean = static_cast<double>(total) / 4.0;
  EXPECT_LE(static_cast<double>(max_pairs), mean * 1.5);
}

TEST(OkTopk, TruncatesToTheGlobalBudget) {
  auto ts = inputs(4, 4096, 0.5, 21);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : ts) coo.push_back(tensor::dense_to_coo(t));
  baselines::OkTopkOptions opts;
  opts.k = 100;
  const auto r = baselines::oktopk_allreduce(coo, {}, opts);
  EXPECT_GT(r.threshold, 0.0);
  EXPECT_GT(r.result.nnz(), 0u);
  EXPECT_LE(r.result.nnz(), 100u);
}

// ---------------------------------------------------------------------------
// Count-sketch reducer
// ---------------------------------------------------------------------------

TEST(Sketch, ErrorWithinAnalyticEpsilon) {
  // The sketch guarantee is an L2 one (per-entry max-abs error stays O(1)
  // from surviving collisions at any width) — both the direct call and the
  // registry verification measure ||estimate - f||_2.
  auto ts = inputs(4, 4096, 0.9, 30);
  const DenseTensor expect = tensor::reference_sum(ts);
  const auto r = baselines::sketch_allreduce(ts, {}, {});
  const double bound = baselines::sketch_error_bound(
      expect.l2_norm(), expect.nnz(), r.sketch_width);
  EXPECT_LE(tensor::l2_diff(r.result, expect), bound);
  // Registry dispatch verifies with the same epsilon, and the bound
  // rejects grossly wrong results (a zeroed tensor errs by ||f||_2).
  auto ts2 = inputs(4, 4096, 0.9, 30);
  const core::RunStats st = core::run_collective("sketch", ts2, {}, flat());
  EXPECT_TRUE(st.verified);
  EXPECT_LE(st.max_error, bound);
  EXPECT_LT(bound, expect.l2_norm());
}

TEST(Sketch, WiderSketchConverges) {
  auto run = [](double width_factor) {
    auto ts = inputs(4, 8192, 0.95, 31);
    const DenseTensor expect = tensor::reference_sum(ts);
    baselines::SketchOptions opts;
    opts.width_factor = width_factor;
    const auto r = baselines::sketch_allreduce(ts, {}, opts);
    return std::make_pair(
        tensor::l2_diff(r.result, expect),
        baselines::sketch_error_bound(expect.l2_norm(), expect.nnz(),
                                      r.sketch_width));
  };
  const auto [narrow_err, narrow_bound] = run(1.0);
  const auto [wide_err, wide_bound] = run(16.0);
  EXPECT_LT(wide_err, narrow_err);   // fewer collisions with more counters
  EXPECT_LE(wide_err, wide_bound);   // and still inside the (m/w) L2 bound
  EXPECT_LT(wide_bound, narrow_bound);
}

TEST(Sketch, DeterministicForFixedSeed) {
  auto run = [] {
    auto ts = inputs(4, 4096, 0.9, 32);
    return baselines::sketch_allreduce(ts, {}, {});
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.stats.completion_time, b.stats.completion_time);
  EXPECT_EQ(a.sketch_width, b.sketch_width);
  ASSERT_EQ(a.result.size(), b.result.size());
  for (std::size_t i = 0; i < a.result.size(); ++i) {
    EXPECT_EQ(a.result[i], b.result[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Zoo cross-product: every registered algorithm x {ideal, two-tier 8:1}
// ---------------------------------------------------------------------------

TEST(ZooCrossProduct, EveryAlgorithmVerifiesOnTheIdealSwitch) {
  const core::ClusterSpec cluster = flat();
  std::uint64_t seed = 40;
  for (const auto& name : core::CollectiveRegistry::global().names()) {
    if (name == "test_dummy") continue;  // registered by the duplicate test
    auto ts = inputs(4, 4096, 0.9, seed++);
    const core::RunStats st = core::run_collective(name, ts, {}, cluster);
    EXPECT_TRUE(st.verified) << name;
    EXPECT_GT(st.completion_time, 0) << name;
  }
}

TEST(ZooCrossProduct, TwoTierRunsOrRejectsByCapability) {
  core::ClusterSpec cluster = flat();
  cluster.topology = core::TopologySpec::two_tier_racks(2, 8.0);
  std::uint64_t seed = 60;
  for (const auto& name : core::CollectiveRegistry::global().names()) {
    if (name == "test_dummy") continue;
    auto& algo = core::CollectiveRegistry::global().at(name);
    auto ts = inputs(4, 4096, 0.9, seed++);
    if (core::capabilities_allow(algo.capabilities(), {}, cluster)) {
      const core::RunStats st = core::run_collective(name, ts, {}, cluster);
      EXPECT_TRUE(st.verified) << name;
    } else {
      EXPECT_THROW(core::run_collective(name, ts, {}, cluster),
                   std::invalid_argument)
          << name;
    }
  }
}

TEST(ZooCrossProduct, TopologyAwareSetIsExact) {
  // Pin which algorithms claim two-tier support so a capability regression
  // is loud: the engine family plus hierarchical, nothing else.
  core::ClusterSpec cluster = flat();
  cluster.topology = core::TopologySpec::two_tier_racks(2, 8.0);
  std::vector<std::string> aware;
  for (const auto& name : core::CollectiveRegistry::global().names()) {
    if (name == "test_dummy") continue;
    if (core::capabilities_allow(
            core::CollectiveRegistry::global().at(name).capabilities(), {},
            cluster)) {
      aware.push_back(name);
    }
  }
  EXPECT_EQ(aware,
            (std::vector<std::string>{"hierarchical", "omnireduce",
                                      "omnireduce_bucketed", "switchml"}));
}

// ---------------------------------------------------------------------------
// Online selector
// ---------------------------------------------------------------------------

TEST(Selector, PrefersSparseAlgorithmsAtHighSparsity) {
  flat();
  core::OnlineSelector selector;
  core::ClusterSpec colocated = core::ClusterSpec::colocated();
  // Dense tensor on a colocated cluster: ring is bandwidth-optimal.
  const auto dense =
      selector.choose(8, 1 << 20, 1.0, {}, colocated);
  EXPECT_EQ(dense.algorithm, "ring");
  // 1% density: a sparse-aware algorithm must win.
  const auto sparse = selector.choose(8, 1 << 20, 0.01, {}, colocated);
  EXPECT_NE(sparse.algorithm, "ring");
  EXPECT_GT(sparse.predicted_seconds, 0.0);
  EXPECT_LT(sparse.corrected_seconds, dense.corrected_seconds);
}

TEST(Selector, DropsCandidatesTheClusterRulesOut) {
  flat();
  core::OnlineSelector selector;
  core::ClusterSpec lossy;
  lossy.fabric.loss_rate = 0.01;
  // Only the engine can simulate loss among the default candidates.
  const auto d = selector.choose(8, 1 << 20, 1.0, {}, lossy);
  EXPECT_EQ(d.algorithm, "omnireduce");
}

TEST(Selector, ThrowsWhenNoCandidateIsViable) {
  flat();
  core::SelectorConfig cfg;
  cfg.candidates = {"ring"};
  core::OnlineSelector selector(cfg);
  core::ClusterSpec lossy;
  lossy.fabric.loss_rate = 0.01;
  EXPECT_THROW(selector.choose(8, 1 << 20, 1.0, {}, lossy),
               std::invalid_argument);
}

TEST(Selector, TelemetryFeedbackOverridesTheModel) {
  flat();
  core::SelectorConfig cfg;
  cfg.candidates = {"ring", "omnireduce"};
  cfg.ewma_alpha = 1.0;  // adopt the observation immediately
  core::OnlineSelector selector(cfg);
  core::ClusterSpec colocated = core::ClusterSpec::colocated();
  const auto first = selector.choose(8, 1 << 20, 1.0, {}, colocated);
  ASSERT_EQ(first.algorithm, "ring");
  // The fabric reports ring running 10x slower than predicted; the
  // corrected score must now favor the engine.
  selector.observe("ring", 1 << 20, 1.0, first.predicted_seconds,
                   first.predicted_seconds * 10.0);
  const auto second = selector.choose(8, 1 << 20, 1.0, {}, colocated);
  EXPECT_EQ(second.algorithm, "omnireduce");
}

TEST(Selector, ReplayIsDeterministic) {
  flat();
  auto replay = [] {
    core::OnlineSelector selector;
    core::ClusterSpec cluster;
    std::vector<std::string> choices;
    for (int step = 0; step < 8; ++step) {
      auto ts = inputs(4, 1 << 14, step % 2 == 0 ? 0.5 : 0.99,
                       100 + static_cast<std::uint64_t>(step));
      core::SelectorDecision d;
      selector.run(ts, {}, cluster, &d);
      choices.push_back(d.algorithm);
    }
    return choices;
  };
  EXPECT_EQ(replay(), replay());
}

TEST(Selector, RunReducesCorrectly) {
  flat();
  core::OnlineSelector selector;
  core::ClusterSpec cluster;
  auto ts = inputs(4, 4096, 0.95, 33);
  const DenseTensor expect = tensor::reference_sum(ts);
  core::SelectorDecision d;
  const core::RunStats st =
      selector.run(ts, {}, cluster, &d, /*verify=*/true);
  EXPECT_TRUE(st.verified) << d.algorithm;
  EXPECT_FALSE(d.algorithm.empty());
}

}  // namespace
}  // namespace omr
