// Multi-tenant fabric: concurrent jobs on one simulated network, with
// weighted-fair link sharing, elastic membership (join/leave between
// steps) and switch-slot admission. Every multi-job run must be
// deterministic — replay-bit-identical serially and under the
// conservative parallel engine (OMR_SIM_THREADS) — and elastic runs must
// reduce to exactly the reference over each step's active members.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/tenancy.h"
#include "innet/p4_aggregator.h"
#include "innet/slot_pool.h"
#include "net/topology.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

/// Set/restore one environment variable for the scope of a test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

Fabric::StepTensors make_steps(std::size_t steps, std::size_t n_workers,
                               std::size_t n, double sparsity,
                               std::uint64_t seed) {
  sim::Rng rng(seed);
  Fabric::StepTensors out(steps);
  for (auto& step : out) {
    step.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      step.push_back(tensor::make_block_sparse(n, 256, sparsity, rng));
    }
  }
  return out;
}

std::string report_json(const Fabric& fabric) {
  std::ostringstream os;
  fabric.report().write_json(os);
  return os.str();
}

// Two 4-worker jobs sharing an 8-machine, 2-rack, 8:1-oversubscribed
// fabric, each with cross-rack worker->aggregator traffic on the same
// spine links.
std::string run_two_jobs() {
  TenantFabricSpec spec;
  spec.n_machines = 8;
  spec.topology = TopologySpec::two_tier_racks(2, 8.0);
  Fabric fabric(spec);

  JobSpec a;
  a.name = "jobA";
  a.config.deterministic_reduction = true;
  a.worker_machines = {0, 1, 4, 5};
  a.aggregator_machines = {3};
  auto ta = make_steps(2, 4, 16384, 0.5, 11);

  JobSpec b;
  b.name = "jobB";
  b.config.deterministic_reduction = true;
  b.worker_machines = {2, 3, 6, 7};
  b.aggregator_machines = {6};
  b.weight = 2.0;
  auto tb = make_steps(2, 4, 16384, 0.5, 22);

  fabric.add_job(a, ta);
  fabric.add_job(b, tb);
  fabric.run();
  return report_json(fabric);
}

TEST(Tenancy, TwoJobReplayIsByteIdentical) {
  const std::string first = run_two_jobs();
  const std::string second = run_two_jobs();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Tenancy, TwoJobPartitionedMatchesSerial) {
  std::string serial;
  {
    ScopedEnv env("OMR_SIM_THREADS", "1");
    serial = run_two_jobs();
  }
  std::string parallel;
  {
    ScopedEnv env("OMR_SIM_THREADS", "4");
    parallel = run_two_jobs();
  }
  EXPECT_EQ(serial, parallel);
}

TEST(Tenancy, TwoJobReportHasPerTenantLinkRows) {
  const std::string json = run_two_jobs();
  EXPECT_NE(json.find("\"schema\":\"omnireduce.fabric_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"jobs\":["), std::string::npos);
  EXPECT_NE(json.find("\"link_shares\":["), std::string::npos);
  EXPECT_NE(json.find("jobA"), std::string::npos);
  EXPECT_NE(json.find("jobB"), std::string::npos);
}

// One job scaling 4 -> 8 -> 6 across three steps. Deterministic-reduction
// sum without quantization must match the reference bit-exactly at every
// step (Fabric::run throws otherwise); membership bookkeeping and the
// join-resync handshake are visible in the report.
std::string run_elastic(bool check_report) {
  TenantFabricSpec spec;
  spec.n_machines = 10;
  Fabric fabric(spec);

  JobSpec job;
  job.name = "elastic";
  job.config.deterministic_reduction = true;
  job.worker_machines = {0, 1, 2, 3, 4, 5, 6, 7};
  job.aggregator_machines = {8, 9};
  job.initial_active = {1, 1, 1, 1, 0, 0, 0, 0};
  for (std::size_t w = 4; w < 8; ++w) {
    job.membership.push_back({/*before_step=*/1, w, /*join=*/true});
  }
  job.membership.push_back({/*before_step=*/2, 0, /*join=*/false});
  job.membership.push_back({/*before_step=*/2, 1, /*join=*/false});
  auto tensors = make_steps(3, 8, 16384, 0.4, 33);

  fabric.add_job(job, tensors);
  fabric.run();

  const telemetry::FabricReport report = fabric.report();
  if (check_report) {
    EXPECT_EQ(report.jobs.size(), 1u);
    EXPECT_TRUE(report.jobs[0].verified);
    EXPECT_EQ(report.jobs[0].step_active.size(), 3u);
    if (report.jobs[0].step_active.size() == 3) {
      EXPECT_EQ(report.jobs[0].step_active[0], 4u);
      EXPECT_EQ(report.jobs[0].step_active[1], 8u);
      EXPECT_EQ(report.jobs[0].step_active[2], 6u);
    }
    EXPECT_EQ(report.jobs[0].step_completion.size(), 3u);
    if (report.jobs[0].step_completion.size() == 3) {
      EXPECT_GT(report.jobs[0].step_completion[0], 0);
      EXPECT_LT(report.jobs[0].step_completion[0],
                report.jobs[0].step_completion[1]);
      EXPECT_LT(report.jobs[0].step_completion[1],
                report.jobs[0].step_completion[2]);
    }
    // 16384 elements / 256-element blocks = 64 streams; each of the 4
    // joiners resyncs every stream of the previous step.
    EXPECT_EQ(report.jobs[0].resyncs, 4u * 64u);
    // Algorithm 1 on a reliable fabric leaves no cross-step stragglers.
    EXPECT_EQ(report.jobs[0].stale_drops, 0u);
  }
  return report_json(fabric);
}

TEST(Tenancy, ElasticMembershipScalesAndVerifiesExactly) {
  run_elastic(/*check_report=*/true);
}

TEST(Tenancy, ElasticPartitionedMatchesSerial) {
  std::string serial;
  {
    ScopedEnv env("OMR_SIM_THREADS", "1");
    serial = run_elastic(/*check_report=*/false);
  }
  std::string parallel;
  {
    ScopedEnv env("OMR_SIM_THREADS", "4");
    parallel = run_elastic(/*check_report=*/false);
  }
  EXPECT_EQ(serial, parallel);
}

TEST(Tenancy, ElasticActiveSetResultsMatchReference) {
  TenantFabricSpec spec;
  spec.n_machines = 6;
  Fabric fabric(spec);

  JobSpec job;
  job.name = "elastic-check";
  job.config.deterministic_reduction = true;
  job.worker_machines = {0, 1, 2, 3};
  job.aggregator_machines = {4};
  job.initial_active = {1, 1, 1, 0};
  job.membership.push_back({/*before_step=*/1, 3, /*join=*/true});
  auto tensors = make_steps(2, 4, 8192, 0.3, 44);

  // Snapshot the inputs before the in-place reduction.
  Fabric::StepTensors inputs = tensors;
  fabric.add_job(job, tensors);
  fabric.run();

  Config ref_cfg;
  ref_cfg.deterministic_reduction = true;
  {
    std::vector<tensor::DenseTensor> step0(inputs[0].begin(),
                                           inputs[0].begin() + 3);
    const tensor::DenseTensor expect = reference_reduce(step0, ref_cfg);
    for (std::size_t w = 0; w < 3; ++w) {
      EXPECT_EQ(tensor::max_abs_diff(tensors[0][w], expect), 0.0);
    }
    // The inactive worker's step-0 tensor is untouched.
    EXPECT_EQ(tensor::max_abs_diff(tensors[0][3], inputs[0][3]), 0.0);
  }
  {
    const tensor::DenseTensor expect = reference_reduce(inputs[1], ref_cfg);
    for (std::size_t w = 0; w < 4; ++w) {
      EXPECT_EQ(tensor::max_abs_diff(tensors[1][w], expect), 0.0);
    }
  }
}

TEST(Tenancy, SlotPoolRejectsOversubscribedJob) {
  TenantFabricSpec spec;
  spec.n_machines = 6;
  spec.switch_slots = 100;  // each job below needs 64
  Fabric fabric(spec);

  JobSpec a;
  a.name = "first";
  a.config.switch_multicast = true;
  a.worker_machines = {0, 1};
  a.aggregator_machines = {4};
  auto ta = make_steps(1, 2, 16384, 0.5, 55);

  JobSpec b = a;
  b.name = "second";
  b.worker_machines = {2, 3};
  b.aggregator_machines = {5};
  auto tb = make_steps(1, 2, 16384, 0.5, 66);

  const int ja = fabric.add_job(a, ta);
  const int jb = fabric.add_job(b, tb);
  EXPECT_TRUE(fabric.admitted(ja));
  EXPECT_FALSE(fabric.admitted(jb));

  fabric.run();  // only the admitted job runs; the rejected one is inert

  const telemetry::FabricReport report = fabric.report();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_TRUE(report.jobs[0].admitted);
  EXPECT_TRUE(report.jobs[0].verified);
  EXPECT_GT(report.jobs[0].finish, 0);
  EXPECT_FALSE(report.jobs[1].admitted);
  EXPECT_NE(report.jobs[1].rejection.find("switch slot pool exhausted"),
            std::string::npos);
  EXPECT_EQ(report.jobs[1].finish, 0);
}

TEST(Tenancy, SlotPoolReserveRelease) {
  innet::SlotPool pool(100);
  EXPECT_FALSE(pool.unlimited());
  EXPECT_TRUE(pool.reserve(0, 60));
  EXPECT_EQ(pool.available(), 40u);
  EXPECT_FALSE(pool.reserve(1, 41));
  EXPECT_TRUE(pool.reserve(1, 40));
  // Re-reserving replaces a job's prior claim instead of stacking it.
  EXPECT_TRUE(pool.reserve(0, 10));
  EXPECT_EQ(pool.used(), 50u);
  pool.release(1);
  EXPECT_EQ(pool.used(), 10u);
  EXPECT_EQ(pool.reserved(0), 10u);
  innet::SlotPool unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_TRUE(unlimited.reserve(0, 1u << 20));
}

TEST(Tenancy, P4RunRejectsWhenSlotsExhausted) {
  sim::Rng rng(77);
  std::vector<tensor::DenseTensor> tensors;
  for (int w = 0; w < 2; ++w) {
    tensors.push_back(tensor::make_block_sparse(16384, 256, 0.5, rng));
  }
  innet::P4Config cfg;
  cfg.switch_slots = 32;  // the layout needs 64 streams
  EXPECT_THROW(innet::run_allreduce_innet(tensors, cfg), std::runtime_error);
  cfg.switch_slots = 64;
  const RunStats stats = innet::run_allreduce_innet(tensors, cfg);
  EXPECT_GT(stats.completion_time, 0);
  EXPECT_TRUE(stats.verified);
}

// Weighted-fair sharing on the oversubscribed spine: two symmetric jobs
// with equal weights split the contended links near-evenly (Jain index ~1);
// tripling one job's weight makes it finish first. Per-tenant link
// accounting must tile the link totals exactly.
struct FairnessSetup {
  TenantFabricSpec spec;
  JobSpec a;
  JobSpec b;
};

FairnessSetup make_fairness_setup(double weight_a, double weight_b) {
  FairnessSetup s;
  s.spec.n_machines = 8;
  s.spec.topology = TopologySpec::two_tier_racks(2, 8.0);
  // rack 0: machines 0-3, rack 1: machines 4-7 (contiguous default).
  s.a.name = "heavy";
  s.a.weight = weight_a;
  s.a.config.deterministic_reduction = true;
  s.a.worker_machines = {4, 5};  // rack 1 -> aggregator in rack 0
  s.a.aggregator_machines = {0};
  s.b = s.a;
  s.b.name = "light";
  s.b.weight = weight_b;
  s.b.worker_machines = {6, 7};
  s.b.aggregator_machines = {1};
  return s;
}

TEST(Tenancy, EqualWeightsShareContendedLinksFairly) {
  FairnessSetup s = make_fairness_setup(1.0, 1.0);
  Fabric fabric(s.spec);
  auto ta = make_steps(1, 2, 65536, 0.0, 88);
  auto tb = make_steps(1, 2, 65536, 0.0, 99);
  fabric.add_job(s.a, ta);
  fabric.add_job(s.b, tb);
  fabric.run();
  const telemetry::FabricReport report = fabric.report();
  // Symmetric dense jobs, equal weights: near-perfect fairness.
  EXPECT_GT(report.fairness_index, 0.95);
  EXPECT_LE(report.fairness_index, 1.0);

  // Per-tenant rows tile the per-link totals exactly.
  const net::Network& net =
      const_cast<Fabric&>(static_cast<const Fabric&>(fabric)).network();
  const net::Topology& topo = net.topology();
  bool saw_contended = false;
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const auto id = static_cast<net::LinkId>(l);
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    int tenants_on_link = 0;
    for (int t = 0; t < 2; ++t) {
      const net::LinkStats& st = net.tenant_link_stats(id, t);
      bytes += st.tx_bytes;
      messages += st.tx_messages;
      if (st.tx_bytes > 0) ++tenants_on_link;
    }
    EXPECT_EQ(bytes, topo.link_stats(id).tx_bytes) << topo.link_name(id);
    EXPECT_EQ(messages, topo.link_stats(id).tx_messages)
        << topo.link_name(id);
    if (tenants_on_link == 2) saw_contended = true;
  }
  EXPECT_TRUE(saw_contended);
}

TEST(Tenancy, HigherWeightFinishesFirstUnderContention) {
  FairnessSetup s = make_fairness_setup(3.0, 1.0);
  Fabric fabric(s.spec);
  auto ta = make_steps(1, 2, 65536, 0.0, 88);
  auto tb = make_steps(1, 2, 65536, 0.0, 99);
  fabric.add_job(s.a, ta);
  fabric.add_job(s.b, tb);
  fabric.run();
  const telemetry::FabricReport report = fabric.report();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_TRUE(report.jobs[0].verified);
  EXPECT_TRUE(report.jobs[1].verified);
  // 3x the fair share on the contended uplink -> strictly earlier finish.
  EXPECT_LT(report.jobs[0].finish, report.jobs[1].finish);

  // Monotonicity: raising a tenant's weight must strictly speed it up.
  // Job B prices its bursts against job A's booked service, so its share
  // of the contended links (and hence its finish time) genuinely depends
  // on the weight ratio.
  const auto finish_b_with = [](double wa, double wb) {
    FairnessSetup s = make_fairness_setup(wa, wb);
    Fabric fabric(s.spec);
    auto ta = make_steps(1, 2, 65536, 0.0, 88);
    auto tb = make_steps(1, 2, 65536, 0.0, 99);
    fabric.add_job(s.a, ta);
    fabric.add_job(s.b, tb);
    fabric.run();
    return fabric.report().jobs[1].finish;
  };
  EXPECT_LT(finish_b_with(1.0, 3.0), finish_b_with(3.0, 1.0));
}

TEST(Tenancy, FairnessPartitionedMatchesSerial) {
  auto run = [] {
    FairnessSetup s = make_fairness_setup(2.0, 1.0);
    Fabric fabric(s.spec);
    auto ta = make_steps(1, 2, 32768, 0.0, 101);
    auto tb = make_steps(1, 2, 32768, 0.0, 202);
    fabric.add_job(s.a, ta);
    fabric.add_job(s.b, tb);
    fabric.run();
    return report_json(fabric);
  };
  std::string serial;
  {
    ScopedEnv env("OMR_SIM_THREADS", "1");
    serial = run();
  }
  std::string parallel;
  {
    ScopedEnv env("OMR_SIM_THREADS", "4");
    parallel = run();
  }
  EXPECT_EQ(serial, parallel);
}

TEST(Tenancy, MalformedJobSpecsThrow) {
  TenantFabricSpec spec;
  spec.n_machines = 4;
  Fabric fabric(spec);
  auto tensors = make_steps(2, 2, 4096, 0.5, 7);

  JobSpec bad;
  bad.worker_machines = {0, 9};  // machine out of range
  bad.aggregator_machines = {1};
  EXPECT_THROW(fabric.add_job(bad, tensors), std::invalid_argument);

  bad.worker_machines = {0, 1};
  bad.weight = 0.0;
  EXPECT_THROW(fabric.add_job(bad, tensors), std::invalid_argument);

  bad.weight = 1.0;
  bad.membership.push_back({/*before_step=*/0, 0, /*join=*/false});
  EXPECT_THROW(fabric.add_job(bad, tensors), std::invalid_argument);

  bad.membership.clear();
  bad.membership.push_back({/*before_step=*/1, 0, /*join=*/true});
  // Worker 0 is already active: a join must name an absent worker.
  EXPECT_THROW(fabric.add_job(bad, tensors), std::invalid_argument);

  bad.membership.clear();
  bad.initial_active = {0, 0};  // no active workers at step 0
  EXPECT_THROW(fabric.add_job(bad, tensors), std::invalid_argument);
}

}  // namespace
}  // namespace omr::core
