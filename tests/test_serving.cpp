// Sharded parameter-server serving tier (src/serve) on the multi-tenant
// fabric: shard routing, hot-embedding caching, request batching, Zipf
// traffic, and the serving-torture sweep. Every serving run must conserve
// requests (issued == served, nothing in flight at drain), replay
// byte-identically — rerun and under OMR_SIM_THREADS — and LRU hit counts
// must be exactly monotone in cache capacity. A zero-serving fabric must
// stay byte-identical to the pre-serving goldens.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/tenancy.h"
#include "net/topology.h"
#include "serve/cache.h"
#include "serve/serving.h"
#include "serve/shard_map.h"
#include "serve/traffic.h"
#include "sim/rng.h"
#include "telemetry/telemetry.h"
#include "tensor/generators.h"

namespace omr::serve {
namespace {

/// Set/restore one environment variable for the scope of a test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

core::Fabric::StepTensors make_steps(std::size_t steps, std::size_t n_workers,
                                     std::size_t n, double sparsity,
                                     std::uint64_t seed) {
  sim::Rng rng(seed);
  core::Fabric::StepTensors out(steps);
  for (auto& step : out) {
    step.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      step.push_back(tensor::make_block_sparse(n, 256, sparsity, rng));
    }
  }
  return out;
}

// One serving scenario on an 8-machine fabric: clients on rack-0 machines
// {0..}, shards on rack-1 machines {4..}, optional co-tenant trainer on
// the remaining machines of both racks (workers {2,3}, aggregator {7}).
struct Scenario {
  core::TenantFabricSpec fspec;
  core::ServeSpec sspec;
  bool co_trainer = false;
};

struct Outcome {
  std::string json;  // full fabric report (includes the serve section)
  telemetry::ServeReport report;
  bool trainer_verified = false;
};

Outcome run_scenario(const Scenario& sc) {
  core::Fabric fabric(sc.fspec);
  std::vector<std::size_t> clients;
  std::vector<std::size_t> shards;
  for (std::size_t c = 0; c < sc.sspec.n_clients; ++c) clients.push_back(c);
  for (std::size_t s = 0; s < sc.sspec.n_shards; ++s) shards.push_back(4 + s);
  ServingJob job(sc.sspec, clients, shards);
  fabric.add_custom_job({"serve"}, job);
  core::Fabric::StepTensors steps;  // outlives run(): add_job keeps a ref
  if (sc.co_trainer) {
    core::JobSpec t;
    t.name = "trainer";
    t.config.deterministic_reduction = true;
    t.worker_machines = {2, 3};
    t.aggregator_machines = {7};
    steps = make_steps(1, 2, 8192, 0.5, sc.sspec.seed ^ 0xabcdULL);
    fabric.add_job(t, steps);
  }
  fabric.run();

  Outcome out;
  std::ostringstream os;
  fabric.report().write_json(os);
  out.json = os.str();
  out.report = job.serve_report();
  if (sc.co_trainer) {
    const telemetry::FabricReport report = fabric.report();
    for (const auto& row : report.jobs) {
      if (row.name == "trainer") out.trainer_verified = row.verified;
    }
  }
  return out;
}

void check_conservation(const Scenario& sc, const Outcome& out) {
  const telemetry::ServeReport& r = out.report;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(sc.sspec.n_clients) *
      sc.sspec.requests_per_client;
  ASSERT_EQ(r.requests_issued, expected);
  ASSERT_EQ(r.responses_received, expected);
  ASSERT_EQ(r.in_flight_at_drain, 0u);
  ASSERT_EQ(r.lookups + r.updates, expected);
  ASSERT_EQ(r.cache_hits + r.cache_misses, r.lookups);
  ASSERT_GE(r.hit_rate, 0.0);
  ASSERT_LE(r.hit_rate, 1.0);
  if (sc.sspec.cache_capacity == 0) {
    ASSERT_EQ(r.cache_hits, 0u);
  }
  std::uint64_t shard_requests = 0;
  for (const auto& s : r.shards) shard_requests += s.requests;
  ASSERT_EQ(shard_requests, expected);
  ASSERT_EQ(r.lanes.size(), 4u);
  for (const auto& lane : r.lanes) {
    ASSERT_LE(lane.p50_ns, lane.p99_ns) << lane.name;
    ASSERT_LE(lane.p99_ns, lane.p999_ns) << lane.name;
  }
  ASSERT_GT(r.finish, r.first_issue);
}

// --- shard routing ---------------------------------------------------------

TEST(Serving, ShardRoutingDeterministicAndCovers) {
  for (const auto routing : {core::ServeSpec::Routing::kHash,
                             core::ServeSpec::Routing::kRange}) {
    for (const std::size_t n_shards : {1u, 2u, 3u, 8u}) {
      const std::size_t key_space = 4096;
      const ShardMap map(routing, n_shards, key_space);
      const ShardMap replay(routing, n_shards, key_space);
      std::vector<std::uint64_t> per_shard(n_shards, 0);
      for (std::uint64_t k = 0; k < key_space; ++k) {
        const std::size_t s = map.shard_of(k);
        ASSERT_LT(s, n_shards);
        // Pure function: same key always lands on the same shard.
        ASSERT_EQ(s, replay.shard_of(k));
        ++per_shard[s];
      }
      std::uint64_t total = 0;
      for (const std::uint64_t c : per_shard) {
        EXPECT_GT(c, 0u);  // every shard owns keys
        total += c;
      }
      EXPECT_EQ(total, key_space);  // every key owned exactly once
    }
  }
}

TEST(Serving, ReshardingDoublesSplitInPlace) {
  // N -> 2N resharding is a pure split: shard s's keys land only on
  // {2s, 2s+1}, so no key ever crosses to another shard family.
  const std::size_t key_space = 8192;
  for (const auto routing : {core::ServeSpec::Routing::kHash,
                             core::ServeSpec::Routing::kRange}) {
    for (const std::size_t n : {1u, 2u, 4u, 8u}) {
      const ShardMap coarse(routing, n, key_space);
      const ShardMap fine(routing, 2 * n, key_space);
      for (std::uint64_t k = 0; k < key_space; ++k) {
        EXPECT_EQ(fine.shard_of(k) / 2, coarse.shard_of(k)) << "key " << k;
      }
    }
  }
}

TEST(Serving, ShardMapRejectsEmptyShapes) {
  EXPECT_THROW(ShardMap(core::ServeSpec::Routing::kHash, 0, 16),
               std::invalid_argument);
  EXPECT_THROW(ShardMap(core::ServeSpec::Routing::kRange, 4, 0),
               std::invalid_argument);
}

// --- embedding cache -------------------------------------------------------

TEST(Serving, CacheLruEvictsLeastRecentlyUsed) {
  EmbeddingCache cache(core::ServeSpec::CachePolicy::kLru, 3);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  ASSERT_TRUE(cache.lookup(1));  // 1 becomes most recent; victim is now 2
  cache.put(4, 40);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(2));
  std::uint32_t v = 0;
  EXPECT_TRUE(cache.lookup(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(cache.lookup(3));
  EXPECT_TRUE(cache.lookup(4));
  // Write-through overwrite refreshes the version without growing.
  cache.put(3, 31);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.lookup(3, &v));
  EXPECT_EQ(v, 31u);
}

TEST(Serving, CacheLfuEvictsColdestEntry) {
  EmbeddingCache cache(core::ServeSpec::CachePolicy::kLfu, 3);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put(3, 3);
  // Heat up 1 and 2; 3 stays at its insert frequency and is the victim.
  ASSERT_TRUE(cache.lookup(1));
  ASSERT_TRUE(cache.lookup(1));
  ASSERT_TRUE(cache.lookup(2));
  EXPECT_EQ(cache.resident_keys().front(), 3u);  // next victim first
  cache.put(4, 4);
  EXPECT_FALSE(cache.lookup(3));
  EXPECT_TRUE(cache.lookup(1));
  EXPECT_TRUE(cache.lookup(2));
  EXPECT_TRUE(cache.lookup(4));
}

TEST(Serving, CacheCapacityZeroIsInert) {
  EmbeddingCache cache(core::ServeSpec::CachePolicy::kLru, 0);
  cache.put(1, 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1));
  EXPECT_EQ(cache.evictions(), 0u);
}

// --- traffic ---------------------------------------------------------------

TEST(Serving, ZipfIsSkewedAndDeterministic) {
  const std::size_t n = 128;
  ZipfGenerator zipf(n, 1.1);
  sim::Rng a(42);
  sim::Rng b(42);
  std::vector<std::uint64_t> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = zipf.next(a);
    ASSERT_LT(k, n);
    ASSERT_EQ(k, zipf.next(b));  // same seed, same stream
    ++counts[k];
  }
  // Rank 0 is the hottest key by a wide margin under alpha > 1.
  EXPECT_GT(counts[0], counts[n - 1] * 10);
  EXPECT_GT(counts[0], counts[1]);

  // alpha = 0 degenerates to uniform: no rank may dominate.
  ZipfGenerator uniform(n, 0.0);
  sim::Rng c(7);
  std::vector<std::uint64_t> ucounts(n, 0);
  for (int i = 0; i < 20000; ++i) ++ucounts[uniform.next(c)];
  for (const std::uint64_t cnt : ucounts) EXPECT_LT(cnt, 20000u / n * 4);
}

TEST(Serving, ZipfRejectsDegenerateShapes) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(16, -0.5), std::invalid_argument);
}

// --- latency histograms ----------------------------------------------------

TEST(Serving, HistogramMergeAndQuantile) {
  telemetry::Histogram a = telemetry::Histogram::exponential(100.0, 1e6, 16);
  telemetry::Histogram b = telemetry::Histogram::exponential(100.0, 1e6, 16);
  for (int i = 0; i < 90; ++i) a.add(200.0);
  for (int i = 0; i < 10; ++i) b.add(5e5);
  a.merge(b);
  EXPECT_EQ(a.total, 100u);
  EXPECT_EQ(a.min, 200.0);
  EXPECT_EQ(a.max, 5e5);
  const double p50 = telemetry::histogram_quantile(a, 0.50);
  const double p99 = telemetry::histogram_quantile(a, 0.99);
  EXPECT_LT(p50, 1000.0);   // median sits in the 200ns bin
  EXPECT_GE(p99, 1e5);      // tail sits in the 5e5 bin
  EXPECT_LE(p50, p99);
  // Quantiles of an empty histogram are defined (0), not UB.
  telemetry::Histogram empty = telemetry::Histogram::exponential(1.0, 10.0, 4);
  EXPECT_EQ(telemetry::histogram_quantile(empty, 0.99), 0.0);
  // Merging mismatched layouts is a hard error, not silent corruption.
  telemetry::Histogram other = telemetry::Histogram::exponential(1.0, 10.0, 4);
  EXPECT_THROW(a.merge(other), std::logic_error);
}

// --- serving fabric job ----------------------------------------------------

Scenario base_scenario() {
  Scenario sc;
  sc.fspec.n_machines = 8;
  sc.fspec.topology = core::TopologySpec::two_tier_racks(2, 4.0);
  sc.sspec.n_clients = 2;
  sc.sspec.n_shards = 2;
  sc.sspec.key_space = 512;
  sc.sspec.requests_per_client = 200;
  sc.sspec.cache_capacity = 32;
  sc.sspec.zipf_alpha = 0.9;
  sc.sspec.update_fraction = 0.1;
  sc.sspec.interarrival = sim::microseconds(1);
  return sc;
}

TEST(Serving, BatchWindowZeroIsUnbatchedByteIdentically) {
  // window = 0 is the unbatched path: every request is its own batch,
  // flushed the instant it arrives (occupancy exactly 1), and the whole
  // run replays byte-identically.
  Scenario sc = base_scenario();
  sc.sspec.batch_window = 0;
  const Outcome a = run_scenario(sc);
  const Outcome b = run_scenario(sc);
  EXPECT_EQ(a.json, b.json);
  std::uint64_t batches = 0;
  for (const auto& s : a.report.shards) {
    EXPECT_EQ(s.batches, s.requests);
    if (s.batches > 0) {
      EXPECT_EQ(s.mean_batch_occupancy, 1.0);
    }
    batches += s.batches;
  }
  EXPECT_EQ(batches, a.report.requests_issued);

  // A real window coalesces: strictly fewer batches than requests.
  sc.sspec.batch_window = sim::microseconds(5);
  const Outcome batched = run_scenario(sc);
  std::uint64_t wbatches = 0;
  std::uint64_t wrequests = 0;
  for (const auto& s : batched.report.shards) {
    wbatches += s.batches;
    wrequests += s.requests;
  }
  EXPECT_LT(wbatches, wrequests);
}

TEST(Serving, CoTenantTrainingJobSharesTheFabric) {
  Scenario sc = base_scenario();
  sc.co_trainer = true;
  const Outcome out = run_scenario(sc);
  check_conservation(sc, out);
  EXPECT_TRUE(out.trainer_verified);
  // Per-tenant link attribution names both tenants on the shared fabric.
  EXPECT_NE(out.json.find("\"link_shares\":["), std::string::npos);
  EXPECT_NE(out.json.find("\"job\":\"serve\""), std::string::npos);
  EXPECT_NE(out.json.find("\"job\":\"trainer\""), std::string::npos);
  EXPECT_NE(out.json.find("\"kind\":\"serve\""), std::string::npos);
  EXPECT_NE(out.json.find("\"schema\":\"omnireduce.serve_report.v1\""),
            std::string::npos);
}

TEST(Serving, MalformedServeSpecsThrow) {
  core::ServeSpec s;
  s.n_clients = 2;
  s.n_shards = 2;
  EXPECT_THROW(ServingJob(s, {0}, {2, 3}), std::invalid_argument);
  EXPECT_THROW(ServingJob(s, {0, 1}, {2}), std::invalid_argument);
  core::ServeSpec bad = s;
  bad.requests_per_client = 0;
  EXPECT_THROW(ServingJob(bad, {0, 1}, {2, 3}), std::invalid_argument);
  bad = s;
  bad.update_fraction = 1.5;
  EXPECT_THROW(ServingJob(bad, {0, 1}, {2, 3}), std::invalid_argument);
  bad = s;
  bad.key_space = 0;
  EXPECT_THROW(ServingJob(bad, {0, 1}, {2, 3}), std::invalid_argument);
  bad = s;
  bad.zipf_alpha = -1.0;
  EXPECT_THROW(ServingJob(bad, {0, 1}, {2, 3}), std::invalid_argument);

  // Machines outside the fabric are rejected at attach time.
  core::TenantFabricSpec fspec;
  fspec.n_machines = 3;
  core::Fabric fabric(fspec);
  ServingJob job(s, {0, 1}, {2, 9});
  EXPECT_THROW(fabric.add_custom_job({"serve"}, job), std::invalid_argument);
}

// --- golden pin ------------------------------------------------------------

// The PR-9 tenancy goldens, byte for byte: adding the serving tier (the
// FabricJob plumbing, the tenant-index refactor, the report "serve"
// section) must not move a single byte of a zero-serving fabric's report.
// Constants captured from the pre-serving tree; see tests/test_tenancy.cpp
// for the scenarios.
TEST(Serving, ZeroServingFabricMatchesPreServingGoldens) {
  {
    core::TenantFabricSpec spec;
    spec.n_machines = 8;
    spec.topology = core::TopologySpec::two_tier_racks(2, 8.0);
    core::Fabric fabric(spec);

    core::JobSpec a;
    a.name = "jobA";
    a.config.deterministic_reduction = true;
    a.worker_machines = {0, 1, 4, 5};
    a.aggregator_machines = {3};
    auto ta = make_steps(2, 4, 16384, 0.5, 11);

    core::JobSpec b;
    b.name = "jobB";
    b.config.deterministic_reduction = true;
    b.worker_machines = {2, 3, 6, 7};
    b.aggregator_machines = {6};
    b.weight = 2.0;
    auto tb = make_steps(2, 4, 16384, 0.5, 22);

    fabric.add_job(a, ta);
    fabric.add_job(b, tb);
    fabric.run();
    std::ostringstream os;
    fabric.report().write_json(os);
    EXPECT_EQ(os.str().size(), 1393u);
    EXPECT_EQ(fnv1a64(os.str()), 0xafeb28a426a6a423ULL);
  }
  {
    core::TenantFabricSpec spec;
    spec.n_machines = 10;
    core::Fabric fabric(spec);

    core::JobSpec job;
    job.name = "elastic";
    job.config.deterministic_reduction = true;
    job.worker_machines = {0, 1, 2, 3, 4, 5, 6, 7};
    job.aggregator_machines = {8, 9};
    job.initial_active = {1, 1, 1, 1, 0, 0, 0, 0};
    for (std::size_t w = 4; w < 8; ++w) {
      job.membership.push_back({/*before_step=*/1, w, /*join=*/true});
    }
    job.membership.push_back({/*before_step=*/2, 0, /*join=*/false});
    job.membership.push_back({/*before_step=*/2, 1, /*join=*/false});
    auto tensors = make_steps(3, 8, 16384, 0.4, 33);

    fabric.add_job(job, tensors);
    fabric.run();
    std::ostringstream os;
    fabric.report().write_json(os);
    EXPECT_EQ(os.str().size(), 403u);
    EXPECT_EQ(fnv1a64(os.str()), 0xd7fcb3155a293e0eULL);
  }
}

// --- torture sweep ---------------------------------------------------------

// Seeded sweep over (shards, clients, topology, skew, batch window, cache
// shape, routing, co-tenant). Every iteration checks conservation, replay
// byte-identity (rerun and OMR_SIM_THREADS=4, full fabric JSON), and exact
// LRU hit-count monotonicity in cache capacity on a serve-only twin.
TEST(Serving, TortureSweep) {
  constexpr int kIterations = 200;
  for (int i = 0; i < kIterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    sim::Rng r(0x5e47eULL +
               static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);

    Scenario sc;
    sc.fspec.n_machines = 8;
    if (r.next_bool(0.6)) {
      constexpr std::array<double, 3> kOversub = {1.0, 4.0, 8.0};
      sc.fspec.topology = core::TopologySpec::two_tier_racks(
          2, kOversub[r.next_below(kOversub.size())]);
    }
    core::ServeSpec& s = sc.sspec;
    s.n_clients = 1 + r.next_below(3);
    s.n_shards = 1 + r.next_below(3);
    s.key_space = 256 + r.next_below(1793);
    s.embedding_dim = 16 + r.next_below(49);
    s.zipf_alpha = 1.25 * r.next_double();
    s.update_fraction = 0.3 * r.next_double();
    s.requests_per_client = 60 + r.next_below(81);
    s.interarrival = 500 + static_cast<sim::Time>(r.next_below(3001));
    constexpr std::array<sim::Time, 4> kWindows = {0, 500, 2000, 5000};
    s.batch_window = kWindows[r.next_below(kWindows.size())];
    constexpr std::array<std::size_t, 4> kCaps = {0, 16, 64, 256};
    s.cache_capacity = kCaps[r.next_below(kCaps.size())];
    s.cache_policy = i % 5 == 0 ? core::ServeSpec::CachePolicy::kLfu
                                : core::ServeSpec::CachePolicy::kLru;
    s.routing = r.next_bool(0.5) ? core::ServeSpec::Routing::kRange
                                 : core::ServeSpec::Routing::kHash;
    s.seed = r.next_u64();
    sc.co_trainer = i % 3 == 0;

    const Outcome first = run_scenario(sc);
    check_conservation(sc, first);
    if (sc.co_trainer) {
      ASSERT_TRUE(first.trainer_verified);
    }

    const Outcome again = run_scenario(sc);
    ASSERT_EQ(first.json, again.json);
    {
      ScopedEnv env("OMR_SIM_THREADS", "4");
      const Outcome parallel = run_scenario(sc);
      ASSERT_EQ(first.json, parallel.json);
    }

    // LRU inclusion property on a serve-only twin: same arrival sequences
    // (open-loop schedule; requests and responses ride disjoint
    // directional links), so a larger cache hits a superset.
    Scenario mono = sc;
    mono.co_trainer = false;
    mono.sspec.cache_policy = core::ServeSpec::CachePolicy::kLru;
    const std::size_t lo_cap = kCaps[r.next_below(3)];  // 0, 16 or 64
    const std::size_t hi_cap = lo_cap == 0 ? 64 : lo_cap * 4;
    mono.sspec.cache_capacity = lo_cap;
    const Outcome lo = run_scenario(mono);
    mono.sspec.cache_capacity = hi_cap;
    const Outcome hi = run_scenario(mono);
    ASSERT_EQ(lo.report.requests_issued, hi.report.requests_issued);
    ASSERT_EQ(lo.report.lookups, hi.report.lookups);
    ASSERT_EQ(lo.report.updates, hi.report.updates);
    ASSERT_GE(hi.report.cache_hits, lo.report.cache_hits);
  }
}

}  // namespace
}  // namespace omr::serve
