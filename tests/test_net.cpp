#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "net/tcp_model.h"
#include "sim/event_queue.h"

namespace omr::net {
namespace {

struct Blob final : Message {
  explicit Blob(std::size_t n, int tag = 0) : bytes(n), tag(tag) {}
  std::size_t bytes;
  int tag;
  std::size_t wire_bytes() const override { return bytes; }
};

struct Recorder final : Endpoint {
  struct Rx {
    EndpointId from;
    sim::Time at;
    int tag;
  };
  std::vector<Rx> received;
  sim::Simulator* sim = nullptr;
  void on_message(EndpointId from, const MessagePtr& msg) override {
    const auto* b = dynamic_cast<const Blob*>(msg.get());
    received.push_back({from, sim->now(), b ? b->tag : -1});
  }
};

struct Fixture {
  sim::Simulator sim;
  Network net;
  Fixture(sim::Time latency = sim::microseconds(10), std::uint64_t seed = 1)
      : net(sim, latency, seed) {}
  std::pair<EndpointId, Recorder*> make_node(double bw = 10e9) {
    auto* r = new Recorder;  // owned by recorders
    r->sim = &sim;
    recorders.push_back(std::unique_ptr<Recorder>(r));
    NicId nic = net.add_nic({bw, bw});
    return {net.attach(r, nic), r};
  }
  std::vector<std::unique_ptr<Recorder>> recorders;
};

TEST(Network, DeliveryTimeMatchesBandwidthPlusLatency) {
  Fixture f(sim::microseconds(10));
  auto [a, ra] = f.make_node(10e9);
  auto [b, rb] = f.make_node(10e9);
  (void)ra;
  // 1250 bytes at 10 Gbps = 1 us TX + 10 us latency + 1 us RX = 12 us.
  f.net.send(a, b, make_message<Blob>(1250));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 1u);
  EXPECT_EQ(rb->received[0].at, sim::microseconds(12));
  EXPECT_EQ(rb->received[0].from, a);
}

TEST(Network, TxSerializationQueuesBackToBack) {
  Fixture f(0);
  auto [a, ra] = f.make_node(10e9);
  auto [b, rb] = f.make_node(10e9);
  (void)ra;
  // Two 1250-byte messages: second departs after the first's 1 us TX slot.
  f.net.send(a, b, make_message<Blob>(1250, 1));
  f.net.send(a, b, make_message<Blob>(1250, 2));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 2u);
  EXPECT_EQ(rb->received[0].at, sim::microseconds(2));
  EXPECT_EQ(rb->received[1].at, sim::microseconds(3));
  EXPECT_EQ(rb->received[0].tag, 1);
  EXPECT_EQ(rb->received[1].tag, 2);
}

TEST(Network, IncastSharesReceiverBandwidth) {
  // 4 senders, one receiver: RX serialization must spread deliveries.
  Fixture f(0);
  auto [dst, rd] = f.make_node(10e9);
  std::vector<EndpointId> srcs;
  for (int i = 0; i < 4; ++i) srcs.push_back(f.make_node(10e9).first);
  for (EndpointId s : srcs) f.net.send(s, dst, make_message<Blob>(12500));
  f.sim.run();
  ASSERT_EQ(rd->received.size(), 4u);
  // Each message takes 10 us of RX; last one completes at ~40+10 us? No:
  // all four arrive after their own 10 us TX, then serialize on RX:
  // delivery times 20, 30, 40, 50 us.
  EXPECT_EQ(rd->received[3].at, sim::microseconds(50));
}

TEST(Network, InOrderPerPair) {
  Fixture f(sim::microseconds(5));
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  for (int i = 0; i < 20; ++i) f.net.send(a, b, make_message<Blob>(100, i));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rb->received[static_cast<size_t>(i)].tag, i);
}

TEST(Network, StatsCountBytesAndMessages) {
  Fixture f;
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  (void)rb;
  f.net.send(a, b, make_message<Blob>(1000));
  f.net.send(a, b, make_message<Blob>(500));
  f.sim.run();
  const NicStats& sa = f.net.nic_stats(f.net.nic_of(a));
  const NicStats& sb = f.net.nic_stats(f.net.nic_of(b));
  EXPECT_EQ(sa.tx_bytes, 1500u);
  EXPECT_EQ(sa.tx_messages, 2u);
  EXPECT_EQ(sb.rx_bytes, 1500u);
  EXPECT_EQ(sb.rx_messages, 2u);
}

TEST(Network, LossDropsApproximatelyAtConfiguredRate) {
  Fixture f(0, 42);
  auto [a, ra] = f.make_node(100e9);
  auto [b, rb] = f.make_node(100e9);
  (void)ra;
  f.net.set_loss_rate(0.1);
  const int n = 20000;
  for (int i = 0; i < n; ++i) f.net.send(a, b, make_message<Blob>(10));
  f.sim.run();
  const double delivered = static_cast<double>(rb->received.size());
  EXPECT_NEAR(delivered / n, 0.9, 0.01);
  EXPECT_EQ(f.net.total_dropped(), n - rb->received.size());
}

TEST(Network, ZeroLossDeliversEverything) {
  Fixture f;
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  for (int i = 0; i < 1000; ++i) f.net.send(a, b, make_message<Blob>(10));
  f.sim.run();
  EXPECT_EQ(rb->received.size(), 1000u);
}

TEST(Network, SwitchMulticastPaysOneTxSerialization) {
  Fixture f(0);
  auto [src, rs] = f.make_node(10e9);
  (void)rs;
  std::vector<EndpointId> dsts;
  std::vector<Recorder*> recs;
  for (int i = 0; i < 4; ++i) {
    auto [ep, r] = f.make_node(10e9);
    dsts.push_back(ep);
    recs.push_back(r);
  }
  f.net.send_switch_multicast(src, dsts, make_message<Blob>(1250));
  f.sim.run();
  // One 1 us TX; each receiver: +1 us RX => all delivered at 2 us.
  for (auto* r : recs) {
    ASSERT_EQ(r->received.size(), 1u);
    EXPECT_EQ(r->received[0].at, sim::microseconds(2));
  }
  EXPECT_EQ(f.net.nic_stats(f.net.nic_of(src)).tx_messages, 1u);
}

TEST(Network, ColocatedEndpointsShareNic) {
  Fixture f(0);
  auto [a, ra] = f.make_node(10e9);
  (void)ra;
  // Attach a second endpoint to a's NIC.
  auto* r2 = new Recorder;
  r2->sim = &f.sim;
  f.recorders.push_back(std::unique_ptr<Recorder>(r2));
  EndpointId a2 = f.net.attach(r2, f.net.nic_of(a));
  auto [b, rb] = f.make_node(10e9);
  (void)rb;
  // Both endpoints send: serialization is shared -> total 2 us TX.
  f.net.send(a, b, make_message<Blob>(1250));
  f.net.send(a2, b, make_message<Blob>(1250));
  f.sim.run();
  EXPECT_EQ(f.net.nic_stats(f.net.nic_of(a)).tx_bytes, 2500u);
}

TEST(Network, InvalidConfigThrows) {
  Fixture f;
  EXPECT_THROW(f.net.add_nic({0.0, 10e9}), std::invalid_argument);
  EXPECT_THROW(f.net.attach(nullptr, 0), std::invalid_argument);
  Recorder r;
  EXPECT_THROW(f.net.attach(&r, 99), std::out_of_range);
}


TEST(Network, RxMessageOverheadSlowsSmallPackets) {
  // 1000 tiny messages: with 1 us per-message RX cost, delivery takes at
  // least 1 ms regardless of bandwidth.
  Fixture f(0);
  auto [a, ra] = f.make_node(100e9);
  (void)ra;
  auto* r = new Recorder;
  r->sim = &f.sim;
  f.recorders.push_back(std::unique_ptr<Recorder>(r));
  NicId nic = f.net.add_nic({100e9, 100e9, 1000.0});
  EndpointId b = f.net.attach(r, nic);
  for (int i = 0; i < 1000; ++i) f.net.send(a, b, make_message<Blob>(10));
  f.sim.run();
  ASSERT_EQ(r->received.size(), 1000u);
  EXPECT_GE(r->received.back().at, sim::milliseconds(1));
}

TEST(Network, TraceRecordsDeliveriesAndDrops) {
  Fixture f(sim::microseconds(2), 5);
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  (void)rb;
  std::vector<TraceEvent> trace;
  f.net.enable_trace(&trace);
  f.net.set_loss_rate(0.5);
  const int n = 2000;
  for (int i = 0; i < n; ++i) f.net.send(a, b, make_message<Blob>(100));
  f.sim.run();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(n));
  std::size_t dropped = 0;
  for (const TraceEvent& ev : trace) {
    EXPECT_EQ(ev.src, a);
    EXPECT_EQ(ev.dst, b);
    EXPECT_EQ(ev.bytes, 100u);
    if (ev.dropped) {
      ++dropped;
    } else {
      EXPECT_GT(ev.delivery, ev.departure);
    }
  }
  EXPECT_EQ(dropped, f.net.total_dropped());
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.5, 0.05);
}

TEST(TcpModel, NoLossGivesLineRate) {
  EXPECT_DOUBLE_EQ(tcp_goodput_bps(10e9, 100e-6, 0.0), 10e9);
}

TEST(TcpModel, GoodputCollapsesWithLoss) {
  // Use a 100 Gbps cap so neither point is line-rate-limited.
  const double g001 = tcp_goodput_bps(100e9, 100e-6, 0.0001);
  const double g1 = tcp_goodput_bps(100e9, 100e-6, 0.01);
  EXPECT_GT(g001, g1);
  EXPECT_LT(g1, 100e9);
  // Mathis: 100x more loss => sqrt(100) = 10x slower.
  EXPECT_NEAR(g001 / g1, 10.0, 0.5);
}

}  // namespace
}  // namespace omr::net
