#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "net/tcp_model.h"
#include "sim/event_queue.h"

namespace omr::net {
namespace {

struct Blob final : Message {
  explicit Blob(std::size_t n, int tag = 0) : bytes(n), tag(tag) {}
  std::size_t bytes;
  int tag;
  std::size_t wire_bytes() const override { return bytes; }
};

struct Recorder final : Endpoint {
  struct Rx {
    EndpointId from;
    sim::Time at;
    int tag;
  };
  std::vector<Rx> received;
  sim::Simulator* sim = nullptr;
  void on_message(EndpointId from, const MessagePtr& msg) override {
    const auto* b = dynamic_cast<const Blob*>(msg.get());
    received.push_back({from, sim->now(), b ? b->tag : -1});
  }
};

struct Fixture {
  sim::Simulator sim;
  Network net;
  Fixture(sim::Time latency = sim::microseconds(10), std::uint64_t seed = 1)
      : net(sim, latency, seed) {}
  std::pair<EndpointId, Recorder*> make_node(double bw = 10e9) {
    auto* r = new Recorder;  // owned by recorders
    r->sim = &sim;
    recorders.push_back(std::unique_ptr<Recorder>(r));
    NicId nic = net.add_nic({bw, bw});
    return {net.attach(r, nic), r};
  }
  std::vector<std::unique_ptr<Recorder>> recorders;
};

TEST(Network, DeliveryTimeMatchesBandwidthPlusLatency) {
  Fixture f(sim::microseconds(10));
  auto [a, ra] = f.make_node(10e9);
  auto [b, rb] = f.make_node(10e9);
  (void)ra;
  // 1250 bytes at 10 Gbps = 1 us TX + 10 us latency + 1 us RX = 12 us.
  f.net.send(a, b, make_message<Blob>(1250));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 1u);
  EXPECT_EQ(rb->received[0].at, sim::microseconds(12));
  EXPECT_EQ(rb->received[0].from, a);
}

TEST(Network, TxSerializationQueuesBackToBack) {
  Fixture f(0);
  auto [a, ra] = f.make_node(10e9);
  auto [b, rb] = f.make_node(10e9);
  (void)ra;
  // Two 1250-byte messages: second departs after the first's 1 us TX slot.
  f.net.send(a, b, make_message<Blob>(1250, 1));
  f.net.send(a, b, make_message<Blob>(1250, 2));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 2u);
  EXPECT_EQ(rb->received[0].at, sim::microseconds(2));
  EXPECT_EQ(rb->received[1].at, sim::microseconds(3));
  EXPECT_EQ(rb->received[0].tag, 1);
  EXPECT_EQ(rb->received[1].tag, 2);
}

TEST(Network, IncastSharesReceiverBandwidth) {
  // 4 senders, one receiver: RX serialization must spread deliveries.
  Fixture f(0);
  auto [dst, rd] = f.make_node(10e9);
  std::vector<EndpointId> srcs;
  for (int i = 0; i < 4; ++i) srcs.push_back(f.make_node(10e9).first);
  for (EndpointId s : srcs) f.net.send(s, dst, make_message<Blob>(12500));
  f.sim.run();
  ASSERT_EQ(rd->received.size(), 4u);
  // Each message takes 10 us of RX; last one completes at ~40+10 us? No:
  // all four arrive after their own 10 us TX, then serialize on RX:
  // delivery times 20, 30, 40, 50 us.
  EXPECT_EQ(rd->received[3].at, sim::microseconds(50));
}

TEST(Network, InOrderPerPair) {
  Fixture f(sim::microseconds(5));
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  for (int i = 0; i < 20; ++i) f.net.send(a, b, make_message<Blob>(100, i));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rb->received[static_cast<size_t>(i)].tag, i);
}

TEST(Network, StatsCountBytesAndMessages) {
  Fixture f;
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  (void)rb;
  f.net.send(a, b, make_message<Blob>(1000));
  f.net.send(a, b, make_message<Blob>(500));
  f.sim.run();
  const NicStats& sa = f.net.nic_stats(f.net.nic_of(a));
  const NicStats& sb = f.net.nic_stats(f.net.nic_of(b));
  EXPECT_EQ(sa.tx_bytes, 1500u);
  EXPECT_EQ(sa.tx_messages, 2u);
  EXPECT_EQ(sb.rx_bytes, 1500u);
  EXPECT_EQ(sb.rx_messages, 2u);
}

TEST(Network, LossDropsApproximatelyAtConfiguredRate) {
  Fixture f(0, 42);
  auto [a, ra] = f.make_node(100e9);
  auto [b, rb] = f.make_node(100e9);
  (void)ra;
  f.net.set_loss_rate(0.1);
  const int n = 20000;
  for (int i = 0; i < n; ++i) f.net.send(a, b, make_message<Blob>(10));
  f.sim.run();
  const double delivered = static_cast<double>(rb->received.size());
  EXPECT_NEAR(delivered / n, 0.9, 0.01);
  EXPECT_EQ(f.net.total_dropped(), n - rb->received.size());
}

TEST(Network, ZeroLossDeliversEverything) {
  Fixture f;
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  for (int i = 0; i < 1000; ++i) f.net.send(a, b, make_message<Blob>(10));
  f.sim.run();
  EXPECT_EQ(rb->received.size(), 1000u);
}

TEST(Network, SwitchMulticastPaysOneTxSerialization) {
  Fixture f(0);
  auto [src, rs] = f.make_node(10e9);
  (void)rs;
  std::vector<EndpointId> dsts;
  std::vector<Recorder*> recs;
  for (int i = 0; i < 4; ++i) {
    auto [ep, r] = f.make_node(10e9);
    dsts.push_back(ep);
    recs.push_back(r);
  }
  f.net.send_switch_multicast(src, dsts, make_message<Blob>(1250));
  f.sim.run();
  // One 1 us TX; each receiver: +1 us RX => all delivered at 2 us.
  for (auto* r : recs) {
    ASSERT_EQ(r->received.size(), 1u);
    EXPECT_EQ(r->received[0].at, sim::microseconds(2));
  }
  EXPECT_EQ(f.net.nic_stats(f.net.nic_of(src)).tx_messages, 1u);
}

TEST(Network, ColocatedEndpointsShareNic) {
  Fixture f(0);
  auto [a, ra] = f.make_node(10e9);
  (void)ra;
  // Attach a second endpoint to a's NIC.
  auto* r2 = new Recorder;
  r2->sim = &f.sim;
  f.recorders.push_back(std::unique_ptr<Recorder>(r2));
  EndpointId a2 = f.net.attach(r2, f.net.nic_of(a));
  auto [b, rb] = f.make_node(10e9);
  (void)rb;
  // Both endpoints send: serialization is shared -> total 2 us TX.
  f.net.send(a, b, make_message<Blob>(1250));
  f.net.send(a2, b, make_message<Blob>(1250));
  f.sim.run();
  EXPECT_EQ(f.net.nic_stats(f.net.nic_of(a)).tx_bytes, 2500u);
}

TEST(Network, InvalidConfigThrows) {
  Fixture f;
  EXPECT_THROW(f.net.add_nic({0.0, 10e9}), std::invalid_argument);
  EXPECT_THROW(f.net.attach(nullptr, 0), std::invalid_argument);
  Recorder r;
  EXPECT_THROW(f.net.attach(&r, 99), std::out_of_range);
}


TEST(Network, RxMessageOverheadSlowsSmallPackets) {
  // 1000 tiny messages: with 1 us per-message RX cost, delivery takes at
  // least 1 ms regardless of bandwidth.
  Fixture f(0);
  auto [a, ra] = f.make_node(100e9);
  (void)ra;
  auto* r = new Recorder;
  r->sim = &f.sim;
  f.recorders.push_back(std::unique_ptr<Recorder>(r));
  NicId nic = f.net.add_nic({100e9, 100e9, 1000.0});
  EndpointId b = f.net.attach(r, nic);
  for (int i = 0; i < 1000; ++i) f.net.send(a, b, make_message<Blob>(10));
  f.sim.run();
  ASSERT_EQ(r->received.size(), 1000u);
  EXPECT_GE(r->received.back().at, sim::milliseconds(1));
}

TEST(Network, TraceRecordsDeliveriesAndDrops) {
  Fixture f(sim::microseconds(2), 5);
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  (void)ra;
  (void)rb;
  std::vector<TraceEvent> trace;
  f.net.enable_trace(&trace);
  f.net.set_loss_rate(0.5);
  const int n = 2000;
  for (int i = 0; i < n; ++i) f.net.send(a, b, make_message<Blob>(100));
  f.sim.run();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(n));
  std::size_t dropped = 0;
  for (const TraceEvent& ev : trace) {
    EXPECT_EQ(ev.src, a);
    EXPECT_EQ(ev.dst, b);
    EXPECT_EQ(ev.bytes, 100u);
    if (ev.dropped) {
      ++dropped;
    } else {
      EXPECT_GT(ev.delivery, ev.departure);
    }
  }
  EXPECT_EQ(dropped, f.net.total_dropped());
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.5, 0.05);
}

TEST(Network, AddTenantTrafficAccumulates) {
  Fixture f;
  auto [a, ra] = f.make_node();
  (void)ra;
  const NicId nic = f.net.nic_of(a);
  f.net.add_tenant_traffic(0, nic, 1000, 500, 3, 2);
  f.net.add_tenant_traffic(0, nic, 10, 20);
  const NicStats& s = f.net.nic_stats(nic);
  EXPECT_EQ(s.tx_bytes, 1010u);
  EXPECT_EQ(s.rx_bytes, 520u);
  EXPECT_EQ(s.tx_messages, 3u);
  EXPECT_EQ(s.rx_messages, 2u);
  // The per-tenant external ledger tracks independently of NIC totals.
  const NicStats& ext = f.net.tenant_external(0);
  EXPECT_EQ(ext.tx_bytes, 1010u);
  EXPECT_EQ(ext.rx_bytes, 520u);
  EXPECT_THROW(f.net.add_tenant_traffic(0, 99, 1, 1), std::out_of_range);
  EXPECT_THROW(f.net.add_tenant_traffic(7, nic, 1, 1), std::out_of_range);
}

// Removal pin for the deprecated un-attributed external-traffic shim:
// external traffic must be attributed to a tenant via add_tenant_traffic.
// The detection idiom makes any reintroduction of the legacy signature a
// compile-visible failure here.
template <typename T, typename = void>
struct has_legacy_external_traffic : std::false_type {};
template <typename T>
struct has_legacy_external_traffic<
    T, std::void_t<decltype(std::declval<T&>().add_external_traffic(
           std::declval<NicId>(), std::uint64_t{0}, std::uint64_t{0}))>>
    : std::true_type {};

static_assert(!has_legacy_external_traffic<Network>::value,
              "Network::add_external_traffic was removed in favor of "
              "add_tenant_traffic(tenant, ...); do not reintroduce the "
              "un-attributed legacy hook");

TEST(Network, LegacyExternalTrafficHookStaysRemoved) {
  EXPECT_FALSE(has_legacy_external_traffic<Network>::value);
}

TEST(Network, SwitchMulticastIndependentDropsUnderLoss) {
  Fixture f(0, 7);
  f.net.set_loss_rate(0.3);
  auto [src, rs] = f.make_node(100e9);
  (void)rs;
  std::vector<EndpointId> dsts;
  std::vector<Recorder*> recs;
  for (int i = 0; i < 4; ++i) {
    auto [ep, r] = f.make_node(100e9);
    dsts.push_back(ep);
    recs.push_back(r);
  }
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    f.net.send_switch_multicast(src, dsts, make_message<Blob>(100, i));
  }
  f.sim.run();
  // Single TX serialization per multicast regardless of fan-out.
  EXPECT_EQ(f.net.nic_stats(f.net.nic_of(src)).tx_messages,
            static_cast<std::uint64_t>(n));
  // Drops are per-receiver: every copy draws independently, so receiver
  // delivery counts track the loss rate and the books balance.
  std::size_t delivered = 0;
  std::uint64_t dst_drops = 0;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const double rate = static_cast<double>(recs[i]->received.size()) / n;
    EXPECT_NEAR(rate, 0.7, 0.08);
    delivered += recs[i]->received.size();
    dst_drops += f.net.nic_stats(f.net.nic_of(dsts[i])).dropped_messages;
  }
  EXPECT_EQ(delivered + f.net.total_dropped(),
            static_cast<std::size_t>(n) * recs.size());
  EXPECT_EQ(dst_drops, f.net.total_dropped());
  // Independence: some multicast must have reached a strict subset of the
  // receivers (all-or-nothing drops would never produce one).
  bool partial = false;
  for (int tag = 0; tag < n && !partial; ++tag) {
    std::size_t got = 0;
    for (auto* r : recs) {
      for (const auto& rx : r->received) {
        if (rx.tag == tag) {
          ++got;
          break;
        }
      }
    }
    partial = got > 0 && got < recs.size();
  }
  EXPECT_TRUE(partial);
}

TEST(LossProcess, BernoulliZeroRateIsLossless) {
  LossProcess lp = LossProcess::bernoulli(0.0);
  EXPECT_TRUE(lp.lossless());
  GilbertElliottConfig off;
  EXPECT_TRUE(LossProcess::gilbert_elliott(off).lossless());
}

TEST(LossProcess, GilbertElliottBurstsMatchChainParameters) {
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.01;
  ge.p_bad_to_good = 0.25;  // mean burst length 4
  LossProcess lp = LossProcess::gilbert_elliott(ge);
  sim::Rng rng(123);
  const int n = 200000;
  int drops = 0, bursts = 0, run = 0;
  for (int i = 0; i < n; ++i) {
    if (lp.drop(rng)) {
      ++drops;
      ++run;
    } else if (run > 0) {
      ++bursts;
      run = 0;
    }
  }
  if (run > 0) ++bursts;
  const double rate = static_cast<double>(drops) / n;
  EXPECT_NEAR(rate, ge.steady_state_loss(), 0.006);
  const double mean_burst = static_cast<double>(drops) / bursts;
  EXPECT_NEAR(mean_burst, 1.0 / ge.p_bad_to_good, 0.5);
  // i.i.d. loss at the same rate would make one-drop bursts dominate; the
  // chain's mean burst must sit far above 1.
  EXPECT_GT(mean_burst, 2.0);
}

TEST(Network, GilbertElliottFabricLossAccountsEveryMessage) {
  Fixture f(0, 9);
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.2;
  f.net.set_loss_model(LossProcess::gilbert_elliott(ge));
  auto [a, ra] = f.make_node(100e9);
  auto [b, rb] = f.make_node(100e9);
  (void)ra;
  const int n = 20000;
  for (int i = 0; i < n; ++i) f.net.send(a, b, make_message<Blob>(10));
  f.sim.run();
  EXPECT_EQ(rb->received.size() + f.net.total_dropped(),
            static_cast<std::size_t>(n));
  const double rate = static_cast<double>(f.net.total_dropped()) / n;
  EXPECT_NEAR(rate, ge.steady_state_loss(), 0.01);
}

// --- TwoTierFabric ---

struct FabricFixture {
  sim::Simulator sim;
  Network net;
  explicit FabricFixture(TwoTierFabric::Config cfg, std::uint64_t seed = 1)
      : net(sim, std::make_unique<TwoTierFabric>(std::move(cfg)), seed) {}
  std::pair<EndpointId, Recorder*> make_node(double bw = 10e9) {
    auto* r = new Recorder;  // owned by recorders
    r->sim = &sim;
    recorders.push_back(std::unique_ptr<Recorder>(r));
    NicId nic = net.add_nic({bw, bw});
    return {net.attach(r, nic), r};
  }
  std::vector<std::unique_ptr<Recorder>> recorders;
};

TEST(TwoTierFabric, IntraRackMatchesIdealSwitchAtHalfLatency) {
  TwoTierFabric::Config cfg;
  cfg.n_racks = 2;
  cfg.hop_latency = sim::microseconds(5);
  cfg.rack_of_nic = {0, 0};
  FabricFixture f(cfg);
  auto [a, ra] = f.make_node(10e9);
  auto [b, rb] = f.make_node(10e9);
  (void)ra;
  // Same-rack path: 1 us TX + 2 x 5 us hops + 1 us RX = the ideal switch's
  // 12 us with one_way_latency = 10 us (hop = L/2 calibration).
  f.net.send(a, b, make_message<Blob>(1250));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 1u);
  EXPECT_EQ(rb->received[0].at, sim::microseconds(12));
}

TEST(TwoTierFabric, InterRackPaysStoreAndForwardPerHop) {
  TwoTierFabric::Config cfg;
  cfg.n_racks = 2;
  cfg.hop_latency = sim::microseconds(5);
  cfg.rack_of_nic = {0, 1};
  FabricFixture f(cfg);
  auto [a, ra] = f.make_node(10e9);
  auto [b, rb] = f.make_node(10e9);
  (void)ra;
  // 1 us TX, 5 us to ToR; uplink (10 Gbps at 1:1) serializes 1 us then
  // 5 us to the spine; downlink serializes 1 us then 10 us to the NIC;
  // 1 us RX: delivered at 24 us.
  f.net.send(a, b, make_message<Blob>(1250));
  f.sim.run();
  ASSERT_EQ(rb->received.size(), 1u);
  EXPECT_EQ(rb->received[0].at, sim::microseconds(24));
  // Both spine links carried the message; per-link books agree.
  const auto& topo = dynamic_cast<const TwoTierFabric&>(f.net.topology());
  EXPECT_EQ(topo.link_stats(topo.uplink(0)).tx_messages, 1u);
  EXPECT_EQ(topo.link_stats(topo.uplink(0)).tx_bytes, 1250u);
  EXPECT_EQ(topo.link_stats(topo.downlink(1)).tx_messages, 1u);
  EXPECT_EQ(topo.link_stats(topo.downlink(0)).tx_messages, 0u);
}

TEST(TwoTierFabric, DerivedUplinkCapacityHonorsOversubscription) {
  TwoTierFabric::Config cfg;
  cfg.n_racks = 2;
  cfg.hop_latency = 0;
  cfg.oversubscription = 2.0;
  cfg.rack_of_nic = {0, 0, 1};
  FabricFixture f(cfg);
  auto [a0, r0] = f.make_node(10e9);
  auto [a1, r1] = f.make_node(10e9);
  auto [b, rb] = f.make_node(10e9);
  (void)r0;
  (void)r1;
  (void)rb;
  f.net.send(a0, b, make_message<Blob>(100));  // freezes the fabric
  f.sim.run();
  const auto& topo = dynamic_cast<const TwoTierFabric&>(f.net.topology());
  // Rack 0 edge = 20 Gbps over ratio 2 -> 10 Gbps uplink; rack 1's single
  // NIC gives a 5 Gbps uplink.
  EXPECT_DOUBLE_EQ(topo.link(topo.uplink(0)).cfg.bandwidth_bps, 10e9);
  EXPECT_DOUBLE_EQ(topo.link(topo.uplink(1)).cfg.bandwidth_bps, 5e9);
}

TEST(TwoTierFabric, SharedSpineLinksSerializeCrossRackTraffic) {
  TwoTierFabric::Config cfg;
  cfg.n_racks = 2;
  cfg.hop_latency = 0;
  cfg.uplink_bandwidth_bps = 10e9;  // oversubscribed: rack edge is 20 Gbps
  cfg.rack_of_nic = {0, 0, 1, 1};
  FabricFixture f(cfg);
  auto [a0, r0] = f.make_node(10e9);
  auto [a1, r1] = f.make_node(10e9);
  auto [b0, rb0] = f.make_node(10e9);
  auto [b1, rb1] = f.make_node(10e9);
  (void)r0;
  (void)r1;
  // Both rack-0 NICs finish TX at 10 us in parallel, then queue FIFO on
  // the shared 10 Gbps uplink (10->20, 20->30) and again on rack 1's
  // shared downlink (20->30, 30->40); separate RX NICs add 10 us each.
  f.net.send(a0, b0, make_message<Blob>(12500));
  f.net.send(a1, b1, make_message<Blob>(12500));
  f.sim.run();
  ASSERT_EQ(rb0->received.size(), 1u);
  ASSERT_EQ(rb1->received.size(), 1u);
  EXPECT_EQ(rb0->received[0].at, sim::microseconds(40));
  EXPECT_EQ(rb1->received[0].at, sim::microseconds(50));
}

TEST(TwoTierFabric, SpineLossDropsOnlyCrossRackTraffic) {
  TwoTierFabric::Config cfg;
  cfg.n_racks = 2;
  cfg.hop_latency = 0;
  cfg.rack_of_nic = {0, 0, 1};
  cfg.spine_loss = LossProcess::bernoulli(1.0);
  FabricFixture f(cfg);
  auto [a, ra] = f.make_node();
  auto [b, rb] = f.make_node();
  auto [c, rc] = f.make_node();
  (void)ra;
  f.net.send(a, b, make_message<Blob>(100));  // intra-rack: ToR only
  f.net.send(a, c, make_message<Blob>(100));  // crosses the lossy spine
  f.sim.run();
  EXPECT_EQ(rb->received.size(), 1u);
  EXPECT_EQ(rc->received.size(), 0u);
  EXPECT_EQ(f.net.total_dropped(), 1u);
  const auto& topo = dynamic_cast<const TwoTierFabric&>(f.net.topology());
  EXPECT_EQ(topo.link_stats(topo.uplink(0)).dropped_messages, 1u);
  EXPECT_EQ(topo.link_stats(topo.downlink(1)).tx_messages, 0u);
}

TEST(TwoTierFabric, RejectsInvalidConfig) {
  TwoTierFabric::Config zero_racks;
  zero_racks.n_racks = 0;
  EXPECT_THROW(TwoTierFabric{zero_racks}, std::invalid_argument);
  TwoTierFabric::Config under;
  under.oversubscription = 0.5;
  EXPECT_THROW(TwoTierFabric{under}, std::invalid_argument);
  TwoTierFabric::Config bad_rack;
  bad_rack.n_racks = 2;
  bad_rack.rack_of_nic = {0, 3};
  EXPECT_THROW(TwoTierFabric{bad_rack}, std::invalid_argument);
}

TEST(TcpModel, NoLossGivesLineRate) {
  EXPECT_DOUBLE_EQ(tcp_goodput_bps(10e9, 100e-6, 0.0), 10e9);
}

TEST(TcpModel, CappedAtLineRate) {
  // Vanishing loss pushes the Mathis bound far above the wire; goodput
  // must clamp to the line rate.
  EXPECT_DOUBLE_EQ(tcp_goodput_bps(1e9, 100e-6, 1e-9), 1e9);
}

TEST(TcpModel, ScalesWithMssAndInverseRtt) {
  // Uncapped regime: goodput ~ MSS / RTT.
  const double base = tcp_goodput_bps(1e15, 100e-6, 0.001);
  EXPECT_NEAR(tcp_goodput_bps(1e15, 100e-6, 0.001, 2920) / base, 2.0, 1e-9);
  EXPECT_NEAR(tcp_goodput_bps(1e15, 200e-6, 0.001) / base, 0.5, 1e-9);
}

TEST(TcpModel, GoodputCollapsesWithLoss) {
  // Use a 100 Gbps cap so neither point is line-rate-limited.
  const double g001 = tcp_goodput_bps(100e9, 100e-6, 0.0001);
  const double g1 = tcp_goodput_bps(100e9, 100e-6, 0.01);
  EXPECT_GT(g001, g1);
  EXPECT_LT(g1, 100e9);
  // Mathis: 100x more loss => sqrt(100) = 10x slower.
  EXPECT_NEAR(g001 / g1, 10.0, 0.5);
}

}  // namespace
}  // namespace omr::net
