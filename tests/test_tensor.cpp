#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/rng.h"
#include "tensor/blocks.h"
#include "tensor/coo.h"
#include "tensor/dense.h"
#include "tensor/generators.h"
#include "tensor/index_codec.h"

namespace omr::tensor {
namespace {

TEST(DenseTensor, BasicOps) {
  DenseTensor t(4);
  t[0] = 1.0f;
  t[2] = -2.0f;
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.nnz(), 2u);
  EXPECT_DOUBLE_EQ(t.sparsity(), 0.5);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(5.0), 1e-9);
}

TEST(DenseTensor, AddInplace) {
  DenseTensor a(std::vector<float>{1, 2, 3});
  DenseTensor b(std::vector<float>{10, 20, 30});
  a.add_inplace(b);
  EXPECT_EQ(a, DenseTensor(std::vector<float>{11, 22, 33}));
  DenseTensor c(2);
  EXPECT_THROW(a.add_inplace(c), std::invalid_argument);
}

TEST(DenseTensor, Axpy) {
  DenseTensor a(std::vector<float>{1, 2});
  DenseTensor b(std::vector<float>{4, 8});
  a.axpy_inplace(0.5f, b);
  EXPECT_EQ(a, DenseTensor(std::vector<float>{3, 6}));
}

TEST(DenseTensor, ReferenceSum) {
  std::vector<DenseTensor> ts;
  ts.emplace_back(std::vector<float>{1, 0, 2});
  ts.emplace_back(std::vector<float>{0, 3, 4});
  ts.emplace_back(std::vector<float>{5, 0, 0});
  DenseTensor sum = reference_sum(ts);
  EXPECT_EQ(sum, DenseTensor(std::vector<float>{6, 3, 6}));
}

TEST(DenseTensor, MaxAbsDiff) {
  DenseTensor a(std::vector<float>{1, 2, 3});
  DenseTensor b(std::vector<float>{1, 2.5f, 3});
  EXPECT_NEAR(max_abs_diff(a, b), 0.5, 1e-9);
}

TEST(Coo, RoundTrip) {
  DenseTensor t(std::vector<float>{0, 1, 0, 0, -2, 0, 3});
  CooTensor c = dense_to_coo(t);
  EXPECT_EQ(c.nnz(), 3u);
  EXPECT_EQ(c.keys, (std::vector<std::int32_t>{1, 4, 6}));
  EXPECT_EQ(c.wire_bytes(), 24u);
  DenseTensor back = coo_to_dense(c);
  EXPECT_EQ(back, t);
}

TEST(Coo, MergeAdd) {
  CooTensor a{8, {1, 3, 5}, {1.f, 1.f, 1.f}};
  CooTensor b{8, {0, 3, 7}, {2.f, 2.f, 2.f}};
  CooTensor s = coo_add(a, b);
  EXPECT_EQ(s.keys, (std::vector<std::int32_t>{0, 1, 3, 5, 7}));
  EXPECT_FLOAT_EQ(s.values[2], 3.0f);
  CooTensor mismatch{4, {}, {}};
  EXPECT_THROW(coo_add(a, mismatch), std::invalid_argument);
}

TEST(Coo, ConversionCostScalesWithSize) {
  EXPECT_GT(conversion_cost(1 << 20, 1 << 10), conversion_cost(1 << 10, 1 << 4));
  EXPECT_GT(conversion_cost(1 << 20, 1 << 19), conversion_cost(1 << 20, 0));
}

TEST(Blocks, NumBlocks) {
  EXPECT_EQ(num_blocks(1024, 256), 4u);
  EXPECT_EQ(num_blocks(1025, 256), 5u);
  EXPECT_EQ(num_blocks(0, 256), 0u);
  EXPECT_THROW(num_blocks(10, 0), std::invalid_argument);
}

TEST(Blocks, BitmapMarksNonzeroBlocks) {
  DenseTensor t(1024);
  t[300] = 1.0f;  // block 1
  t[900] = 2.0f;  // block 3
  BlockBitmap bm(t.span(), 256);
  ASSERT_EQ(bm.size(), 4u);
  EXPECT_FALSE(bm.nonzero(0));
  EXPECT_TRUE(bm.nonzero(1));
  EXPECT_FALSE(bm.nonzero(2));
  EXPECT_TRUE(bm.nonzero(3));
  EXPECT_EQ(bm.nonzero_count(), 2u);
  EXPECT_DOUBLE_EQ(bm.block_sparsity(), 0.5);
}

TEST(Blocks, NextNonzero) {
  DenseTensor t(1024);
  t[300] = 1.0f;
  t[900] = 2.0f;
  BlockBitmap bm(t.span(), 256);
  EXPECT_EQ(bm.next_nonzero(0), 1);
  EXPECT_EQ(bm.next_nonzero(1), 1);
  EXPECT_EQ(bm.next_nonzero(2), 3);
  EXPECT_EQ(bm.next_nonzero(4), kNoBlock);
}

TEST(Blocks, NextNonzeroInColumn) {
  // 8 blocks, stride 4: columns {0,4}, {1,5}, {2,6}, {3,7}.
  DenseTensor t(8 * 16);
  t[4 * 16] = 1.0f;  // block 4, column 0
  t[5 * 16] = 1.0f;  // block 5, column 1
  BlockBitmap bm(t.span(), 16);
  EXPECT_EQ(bm.next_nonzero_in_column(0, 0, 4), 4);
  EXPECT_EQ(bm.next_nonzero_in_column(5, 0, 4), kNoBlock);
  EXPECT_EQ(bm.next_nonzero_in_column(0, 1, 4), 5);
  EXPECT_EQ(bm.next_nonzero_in_column(0, 2, 4), kNoBlock);
}

TEST(Blocks, PartialLastBlock) {
  DenseTensor t(300);  // blocks: [0,256), [256,300)
  t[299] = 5.0f;
  BlockBitmap bm(t.span(), 256);
  ASSERT_EQ(bm.size(), 2u);
  EXPECT_FALSE(bm.nonzero(0));
  EXPECT_TRUE(bm.nonzero(1));
}

TEST(Blocks, DensityWithinBlocks) {
  DenseTensor t(512);
  for (int i = 0; i < 128; ++i) t[static_cast<size_t>(i)] = 1.0f;  // half of block 0
  EXPECT_DOUBLE_EQ(density_within_blocks(t, 256), 0.5);
  EXPECT_DOUBLE_EQ(block_sparsity(t, 256), 0.5);
  DenseTensor z(512);
  EXPECT_DOUBLE_EQ(density_within_blocks(z, 256), 0.0);
}


TEST(IndexCodec, CrossoverAtDimOver32) {
  // Raw keys cost 4*nnz; a bitmask costs dim/8. Equal at nnz = dim/32.
  const std::size_t dim = 32000;
  EXPECT_EQ(choose_index_encoding(999, dim), IndexEncoding::kRawKeys);
  EXPECT_EQ(choose_index_encoding(1001, dim), IndexEncoding::kBitmask);
}

TEST(IndexCodec, ByteCounts) {
  EXPECT_EQ(index_bytes(IndexEncoding::kRawKeys, 10, 1000), 40u);
  EXPECT_EQ(index_bytes(IndexEncoding::kBitmask, 10, 1000), 125u);
  // Compressed wire bytes never exceed the raw COO encoding.
  for (std::size_t nnz : {0u, 5u, 100u, 500u, 1000u}) {
    EXPECT_LE(coo_wire_bytes_compressed(nnz, 1000), nnz * 8 + 125);
    EXPECT_LE(coo_wire_bytes_compressed(nnz, 1000), nnz * 8 > 0 ? nnz * 8 : 125u);
  }
}

TEST(IndexCodec, DenseTensorPrefersBitmask) {
  const std::size_t dim = 1 << 20;
  const std::size_t nnz = dim / 2;
  EXPECT_EQ(choose_index_encoding(nnz, dim), IndexEncoding::kBitmask);
  EXPECT_EQ(coo_wire_bytes_compressed(nnz, dim), nnz * 4 + dim / 8);
}

TEST(Generators, BlockSparseHitsTarget) {
  sim::Rng rng(1);
  DenseTensor t = make_block_sparse(256 * 1000, 256, 0.9, rng);
  EXPECT_NEAR(block_sparsity(t, 256), 0.9, 0.01);
}

TEST(Generators, BlockSparseExtremes) {
  sim::Rng rng(2);
  DenseTensor dense = make_block_sparse(256 * 100, 256, 0.0, rng);
  EXPECT_DOUBLE_EQ(block_sparsity(dense, 256), 0.0);
  DenseTensor empty = make_block_sparse(256 * 100, 256, 1.0, rng);
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_THROW(make_block_sparse(100, 10, 1.5, rng), std::invalid_argument);
}

TEST(Generators, OverlapAll) {
  sim::Rng rng(3);
  auto ts = make_multi_worker(4, 256 * 100, 256, 0.8, OverlapMode::kAll, rng);
  ASSERT_EQ(ts.size(), 4u);
  BlockBitmap ref(ts[0].span(), 256);
  for (const auto& t : ts) {
    BlockBitmap bm(t.span(), 256);
    EXPECT_EQ(bm.bits(), ref.bits());
  }
}

TEST(Generators, OverlapNoneIsDisjoint) {
  sim::Rng rng(4);
  auto ts = make_multi_worker(4, 256 * 100, 256, 0.8, OverlapMode::kNone, rng);
  std::vector<int> owners(100, 0);
  for (const auto& t : ts) {
    BlockBitmap bm(t.span(), 256);
    for (std::size_t b = 0; b < bm.size(); ++b) {
      if (bm.nonzero(static_cast<BlockIndex>(b))) ++owners[b];
    }
  }
  for (int o : owners) EXPECT_LE(o, 1);
}

TEST(Generators, OverlapNoneThrowsWhenInfeasible) {
  sim::Rng rng(5);
  EXPECT_THROW(
      make_multi_worker(8, 256 * 10, 256, 0.0, OverlapMode::kNone, rng),
      std::invalid_argument);
}

TEST(Generators, ElementSparseApproximatesTarget) {
  sim::Rng rng(6);
  DenseTensor t = make_element_sparse(100000, 0.3, rng);
  EXPECT_NEAR(t.sparsity(), 0.3, 0.01);
  // i.i.d. zeros at 30%: every 256-block is almost surely non-zero.
  EXPECT_DOUBLE_EQ(block_sparsity(t, 256), 0.0);
}

TEST(Generators, EmbeddingGradientIsRowClustered) {
  sim::Rng rng(7);
  const std::size_t n = 1 << 20;
  DenseTensor t = make_embedding_gradient(n, n, 1024, 50, 0.0, rng);
  // 50 rows of 1024 non-zeros.
  EXPECT_EQ(t.nnz(), 50u * 1024u);
  // Those rows are aligned: they cover exactly 50 * 4 blocks of 256.
  BlockBitmap bm(t.span(), 256);
  EXPECT_EQ(bm.nonzero_count(), 200u);
}

TEST(Generators, EmbeddingGradientDenseTail) {
  sim::Rng rng(8);
  const std::size_t n = 100000;
  DenseTensor t = make_embedding_gradient(n, 0, 64, 0, 1.0, rng);
  EXPECT_EQ(t.nnz(), n);  // dense tail fully dense
}

TEST(Generators, MultiWorkerEmbeddingHotRowsOverlap) {
  sim::Rng rng(9);
  const std::size_t n = 1 << 18;
  auto ts = make_multi_worker_embedding(8, n, n, 256, 64, 8, 1.0, 0.0, rng);
  // hot_fraction=1 with 8 hot rows and 64 requested rows per worker: each
  // worker activates only hot rows (at most 8 distinct), so every non-zero
  // block is shared by all workers.
  std::set<std::vector<std::uint8_t>> distinct;
  for (const auto& t : ts) distinct.insert(BlockBitmap(t.span(), 256).bits());
  EXPECT_EQ(distinct.size(), 1u);
}

}  // namespace
}  // namespace omr::tensor
