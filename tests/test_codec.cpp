// Inline wire-codec layer: blockwise FP8/Q8/Q6/Q4 codecs on both legs of
// the collective. Contracts pinned here:
//   - per-codec round-trip error bounds and exact wire payload sizes,
//   - quantized-domain folds are exact (order-independent integer sums),
//   - codec-encoded allreduces verify within the analytic slack,
//   - codec disabled == byte-identical to the seed goldens,
//   - codec enabled == replay-bit-identical, including the parallel
//     engine (OMR_SIM_THREADS) and the serialized RunReport,
//   - the online selector scores codec lanes and flips at the size
//     crossover (setup cost vs. wire shrink).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "compress/wire_codec.h"
#include "core/algorithm.h"
#include "core/cluster.h"
#include "core/engine.h"
#include "core/selector.h"
#include "sim/rng.h"
#include "telemetry/report.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

using compress::EncodedBlock;
using compress::QuantAccumulator;
using compress::WireCodec;
using compress::kCodecGroup;

/// Set/restore one environment variable for the scope of a test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

const WireCodec kAllCodecs[] = {WireCodec::kFp8, WireCodec::kQ8,
                                WireCodec::kQ6, WireCodec::kQ4};

std::vector<float> random_values(std::size_t n, double scale, sim::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>((rng.next_double() * 2.0 - 1.0) * scale);
  }
  return v;
}

TEST(WireCodec, NamesRoundTrip) {
  const auto names = compress::codec_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names.front(), "none");
  for (const auto& name : names) {
    EXPECT_EQ(compress::codec_name(compress::codec_from_name(name)), name);
  }
  EXPECT_THROW(compress::codec_from_name("zstd"), std::invalid_argument);
}

TEST(WireCodec, PayloadBytesMatchWireFormat) {
  // Per full 32-element group: fp8 = 2B scale + 32 codes = 34; q8 = 4B
  // scale+zero + 32 = 36; q6 = 4 + 24 = 28; q4 = 4 + 16 = 20. kNone is
  // raw fp32.
  EXPECT_EQ(compress::codec_payload_bytes(WireCodec::kNone, 32), 128u);
  EXPECT_EQ(compress::codec_payload_bytes(WireCodec::kFp8, 32), 34u);
  EXPECT_EQ(compress::codec_payload_bytes(WireCodec::kQ8, 32), 36u);
  EXPECT_EQ(compress::codec_payload_bytes(WireCodec::kQ6, 32), 28u);
  EXPECT_EQ(compress::codec_payload_bytes(WireCodec::kQ4, 32), 20u);
  // A 256-element engine block carries 8 groups.
  for (WireCodec c : kAllCodecs) {
    EXPECT_EQ(compress::codec_payload_bytes(c, 256),
              8 * compress::codec_payload_bytes(c, 32));
  }
  // Partial trailing group: packed code bytes round up, metadata in full.
  EXPECT_EQ(compress::codec_payload_bytes(WireCodec::kQ4, 33),
            20u + 4u + 1u);
  // Asymptotic bits per element match the exact accounting.
  for (WireCodec c : kAllCodecs) {
    const std::size_t n = 1 << 16;
    const double bits =
        8.0 * static_cast<double>(compress::codec_payload_bytes(c, n)) /
        static_cast<double>(n);
    EXPECT_NEAR(bits, compress::codec_bits_per_element(c), 1e-9)
        << compress::codec_name(c);
  }
}

TEST(WireCodec, RoundTripRespectsErrorBound) {
  sim::Rng rng(2024);
  for (WireCodec c : kAllCodecs) {
    SCOPED_TRACE(compress::codec_name(c));
    for (std::size_t n : {std::size_t{32}, std::size_t{256},
                          std::size_t{77}}) {  // incl. a partial group
      const std::vector<float> x = random_values(n, 3.7, rng);
      EncodedBlock e;
      compress::encode_block(x.data(), n, c, e);
      std::vector<float> y(n);
      compress::decode_block(e, y.data());
      for (std::size_t g = 0; g * kCodecGroup < n; ++g) {
        const std::size_t lo = g * kCodecGroup;
        const std::size_t hi = std::min(n, lo + kCodecGroup);
        float amax = 0.0f;
        for (std::size_t i = lo; i < hi; ++i) {
          amax = std::max(amax, std::fabs(x[i]));
        }
        const double bound =
            compress::codec_rel_error_bound(c) * static_cast<double>(amax);
        for (std::size_t i = lo; i < hi; ++i) {
          EXPECT_LE(std::fabs(static_cast<double>(x[i]) - y[i]), bound)
              << "element " << i;
        }
      }
    }
  }
}

TEST(WireCodec, ZeroAndConstantBlocksAreExact) {
  for (WireCodec c : kAllCodecs) {
    SCOPED_TRACE(compress::codec_name(c));
    std::vector<float> zeros(64, 0.0f);
    compress::codec_roundtrip(zeros.data(), zeros.size(), c);
    for (float v : zeros) EXPECT_EQ(v, 0.0f);
  }
}

// Workers whose per-group (min, max) agree produce bitwise-equal fp16
// scales/zeros, so the aggregator folds integer codes: the decoded sum
// must equal scale * sum(q) + k * zero evaluated in double, exactly.
TEST(WireCodec, QuantizedFoldIsExactAndOrderIndependent) {
  constexpr std::size_t kN = 64;  // two groups
  constexpr std::size_t kWorkers = 4;
  sim::Rng rng(7);
  std::vector<EncodedBlock> blocks(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    std::vector<float> x = random_values(kN, 2.0, rng);
    for (std::size_t g = 0; g * kCodecGroup < kN; ++g) {
      x[g * kCodecGroup] = -2.0f;     // pin the group min...
      x[g * kCodecGroup + 1] = 6.0f;  // ...and max across workers
    }
    compress::encode_block(x.data(), kN, WireCodec::kQ8, blocks[w]);
  }

  QuantAccumulator acc;
  acc.reset();
  for (const auto& b : blocks) EXPECT_TRUE(acc.fold(&b));
  ASSERT_TRUE(acc.active);
  EXPECT_EQ(acc.k, kWorkers);
  std::vector<float> sum(kN);
  acc.decode(sum.data(), kN);

  for (std::size_t i = 0; i < kN; ++i) {
    const std::size_t g = i / kCodecGroup;
    double ref = 0.0;
    for (const auto& b : blocks) {
      ref += static_cast<double>(b.scale[g]) * b.q[i];
    }
    ref += static_cast<double>(kWorkers) *
           static_cast<double>(blocks[0].zero[g]);
    EXPECT_EQ(sum[i], static_cast<float>(ref)) << "element " << i;
  }

  // Integer sums commute: reversed fold order is bit-identical.
  QuantAccumulator rev;
  rev.reset();
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    EXPECT_TRUE(rev.fold(&*it));
  }
  std::vector<float> sum_rev(kN);
  rev.decode(sum_rev.data(), kN);
  EXPECT_EQ(sum, sum_rev);
}

TEST(WireCodec, IncompatibleContributionsDeactivateTheAccumulator) {
  sim::Rng rng(9);
  const std::vector<float> a = random_values(32, 1.0, rng);
  const std::vector<float> b = random_values(32, 100.0, rng);  // new scale
  EncodedBlock ea, eb, efp;
  compress::encode_block(a.data(), a.size(), WireCodec::kQ8, ea);
  compress::encode_block(b.data(), b.size(), WireCodec::kQ8, eb);
  compress::encode_block(a.data(), a.size(), WireCodec::kFp8, efp);

  QuantAccumulator acc;
  acc.reset();
  EXPECT_TRUE(acc.fold(&ea));
  EXPECT_FALSE(acc.fold(&eb));  // mismatched scales -> float-domain fallback
  EXPECT_FALSE(acc.active);

  acc.reset();
  EXPECT_FALSE(acc.fold(&efp));  // e4m3 codes are not additive
  EXPECT_FALSE(acc.active);

  acc.reset();
  EXPECT_TRUE(acc.fold(&ea));
  EXPECT_FALSE(acc.fold(nullptr));  // raw fp32 contribution
  EXPECT_FALSE(acc.active);
}

struct RunSetup {
  Config cfg;
  ClusterSpec cluster;
  std::size_t n_workers = 4;
  std::size_t elements = 65536;
  double sparsity = 0.85;
};

RunSetup make_setup(Transport transport, double loss_rate) {
  RunSetup s;
  s.cfg = Config::for_transport(transport);
  FabricConfig fabric;
  fabric.loss_rate = loss_rate;
  fabric.seed = 7;
  s.cluster = ClusterSpec::dedicated(4, fabric);
  return s;
}

std::vector<tensor::DenseTensor> make_tensors(const RunSetup& s) {
  sim::Rng rng(42);
  return tensor::make_multi_worker(s.n_workers, s.elements, s.cfg.block_size,
                                   s.sparsity, tensor::OverlapMode::kRandom,
                                   rng);
}

RunStats run_once(const RunSetup& s, bool verify = false,
                  std::vector<tensor::DenseTensor>* out = nullptr) {
  auto tensors = make_tensors(s);
  RunStats stats = run_allreduce(tensors, s.cfg, s.cluster, verify);
  if (out != nullptr) *out = std::move(tensors);
  return stats;
}

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.worker_finish, b.worker_finish);
  EXPECT_EQ(a.worker_data_bytes, b.worker_data_bytes);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.acks, b.acks);
  EXPECT_EQ(a.duplicate_resends, b.duplicate_resends);
  EXPECT_EQ(a.codec, b.codec);
  EXPECT_EQ(a.codec_saved_bytes, b.codec_saved_bytes);
  EXPECT_EQ(a.codec_exact_folds, b.codec_exact_folds);
  EXPECT_EQ(a.codec_requant_folds, b.codec_requant_folds);
  EXPECT_EQ(a.codec_residual_l2, b.codec_residual_l2);
}

// The codec-disabled default must reproduce the seed goldens bit-exactly
// (same pins as test_determinism — re-asserted under the codec label so a
// codec-layer regression cannot hide behind a suite filter).

TEST(CodecDisabled, RdmaMatchesSeedGolden) {
  const RunStats a = run_once(make_setup(Transport::kRdma, 0.0));
  EXPECT_EQ(a.completion_time, 467621);
  EXPECT_EQ(a.worker_data_bytes,
            (std::vector<std::uint64_t>{38912, 38912, 38912, 38912}));
  EXPECT_EQ(a.total_messages, 1176u);
  EXPECT_EQ(a.rounds, 375u);
  EXPECT_TRUE(a.codec.empty());
  EXPECT_EQ(a.codec_saved_bytes, 0u);
}

TEST(CodecDisabled, LossyDpdkMatchesSeedGolden) {
  const RunStats a = run_once(make_setup(Transport::kDpdk, 0.01));
  EXPECT_EQ(a.completion_time, 1353163);
  EXPECT_EQ(a.retransmissions, 78u);
  EXPECT_EQ(a.dropped_messages, 32u);
  EXPECT_EQ(a.acks, 324u);
  EXPECT_EQ(a.duplicate_resends, 38u);
  EXPECT_TRUE(a.codec.empty());
}

TEST(CodecDisabled, ReportJsonHasNoCodecSection) {
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  auto tensors = make_tensors(s);
  telemetry::RunReport report =
      core::run_allreduce_report(tensors, s.cfg, s.cluster, /*verify=*/true);
  std::ostringstream os;
  report.write_json(os);
  EXPECT_EQ(os.str().find("\"codec\""), std::string::npos);
}

TEST(CodecEnabled, EveryCodecVerifiesAndShrinksTheWire) {
  const RunStats base = run_once(make_setup(Transport::kRdma, 0.0));
  for (WireCodec c : kAllCodecs) {
    SCOPED_TRACE(compress::codec_name(c));
    RunSetup s = make_setup(Transport::kRdma, 0.0);
    s.cfg.codec.codec = c;
    const RunStats a = run_once(s, /*verify=*/true);
    EXPECT_TRUE(a.verified) << "max_error " << a.max_error;
    EXPECT_EQ(a.codec, compress::codec_name(c));
    EXPECT_GT(a.codec_saved_bytes, 0u);
    EXPECT_GT(a.codec_residual_l2, 0.0);
    // Payload accounting reflects the encoded wire size on both legs.
    for (std::size_t w = 0; w < a.worker_data_bytes.size(); ++w) {
      EXPECT_LT(a.worker_data_bytes[w], base.worker_data_bytes[w]);
    }
  }
}

TEST(CodecEnabled, IdenticalWorkerTensorsFoldInTheQuantizedDomain) {
  // Bitwise-equal inputs produce bitwise-equal (scale, zero) per group, so
  // every aggregator fold stays in the integer domain.
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cfg.codec.codec = WireCodec::kQ8;
  sim::Rng rng(42);
  auto tensors = tensor::make_multi_worker(1, s.elements, s.cfg.block_size,
                                           s.sparsity,
                                           tensor::OverlapMode::kRandom, rng);
  std::vector<tensor::DenseTensor> replicated(4, tensors.front());
  const RunStats a =
      run_allreduce(replicated, s.cfg, s.cluster, /*verify=*/true);
  EXPECT_TRUE(a.verified);
  EXPECT_GT(a.codec_exact_folds, 0u);
  EXPECT_EQ(a.codec_requant_folds, 0u);
}

TEST(CodecEnabled, RandomTensorsTakeTheRequantFallback) {
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cfg.codec.codec = WireCodec::kQ8;
  const RunStats a = run_once(s, /*verify=*/true);
  EXPECT_TRUE(a.verified);
  EXPECT_GT(a.codec_requant_folds, 0u);
}

TEST(CodecEnabled, EncodedRunsReplayBitIdentically) {
  for (Transport t : {Transport::kRdma, Transport::kDpdk}) {
    SCOPED_TRACE(t == Transport::kRdma ? "rdma" : "dpdk+loss");
    RunSetup s = make_setup(t, t == Transport::kDpdk ? 0.01 : 0.0);
    s.cfg.codec.codec = WireCodec::kQ4;
    std::vector<tensor::DenseTensor> ra, rb;
    const RunStats a = run_once(s, /*verify=*/false, &ra);
    const RunStats b = run_once(s, /*verify=*/false, &rb);
    expect_identical(a, b);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t w = 0; w < ra.size(); ++w) {
      EXPECT_TRUE(ra[w] == rb[w]) << "worker " << w;  // bitwise
    }
  }
}

TEST(CodecEnabled, ParallelEngineMatchesSerialBitExactly) {
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cfg.codec.codec = WireCodec::kQ4;
  std::vector<tensor::DenseTensor> serial_result, parallel_result;
  RunStats serial, parallel;
  {
    ScopedEnv env("OMR_SIM_THREADS", "1");
    serial = run_once(s, /*verify=*/false, &serial_result);
  }
  {
    ScopedEnv env("OMR_SIM_THREADS", "4");
    parallel = run_once(s, /*verify=*/false, &parallel_result);
  }
  expect_identical(serial, parallel);
  ASSERT_EQ(serial_result.size(), parallel_result.size());
  for (std::size_t w = 0; w < serial_result.size(); ++w) {
    EXPECT_TRUE(serial_result[w] == parallel_result[w]) << "worker " << w;
  }
}

TEST(CodecEnabled, ReportJsonCarriesTheCodecLane) {
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cfg.codec.codec = WireCodec::kQ6;
  auto tensors = make_tensors(s);
  telemetry::RunReport report =
      core::run_allreduce_report(tensors, s.cfg, s.cluster, /*verify=*/true);
  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"codec\":{\"name\":\"q6\""), std::string::npos);
  EXPECT_NE(json.find("\"saved_bytes\""), std::string::npos);
  // Serialized form replays byte-identically too.
  auto tensors2 = make_tensors(s);
  telemetry::RunReport again =
      core::run_allreduce_report(tensors2, s.cfg, s.cluster, /*verify=*/true);
  std::ostringstream os2;
  again.write_json(os2);
  EXPECT_EQ(json, os2.str());
}

TEST(CodecEnabled, AlgorithmsWithoutCodecSupportAreRejected) {
  Config cfg = Config::for_transport(Transport::kRdma);
  cfg.codec.codec = WireCodec::kQ8;
  ClusterSpec cluster = ClusterSpec::dedicated(4);
  sim::Rng rng(1);
  auto tensors = tensor::make_multi_worker(4, 4096, cfg.block_size, 0.5,
                                           tensor::OverlapMode::kRandom, rng);
  EXPECT_THROW(run_collective("omnireduce_kv", tensors, cfg, cluster,
                              /*verify=*/false),
               std::invalid_argument);
  const AlgoCapabilities kv_caps =
      CollectiveRegistry::global().at("omnireduce_kv").capabilities();
  EXPECT_FALSE(capabilities_allow(kv_caps, cfg, cluster));
  // The engine algorithms accept the same Config.
  for (const char* name : {"omnireduce", "switchml", "omnireduce_bucketed"}) {
    const AlgoCapabilities caps =
        CollectiveRegistry::global().at(name).capabilities();
    EXPECT_TRUE(capabilities_allow(caps, cfg, cluster)) << name;
  }
}

TEST(CodecSelector, LanesFlipAtTheSizeCrossover) {
  SelectorConfig sel_cfg;
  sel_cfg.candidates = {"omnireduce"};
  sel_cfg.codecs = compress::codec_names();
  OnlineSelector selector(sel_cfg);
  const Config cfg = Config::for_transport(Transport::kRdma);
  FabricConfig fabric;
  fabric.worker_bandwidth_bps = 10e9;
  fabric.aggregator_bandwidth_bps = 10e9;
  const ClusterSpec cluster = ClusterSpec::dedicated(8, fabric);

  // Small tensor: the one-time codec setup dwarfs the wire savings.
  const SelectorDecision small =
      selector.choose(8, 1024, 1.0, cfg, cluster);
  EXPECT_EQ(small.codec, "none");

  // Large tensor: wire shrink dominates; some codec lane must win.
  const SelectorDecision large =
      selector.choose(8, std::size_t{1} << 22, 1.0, cfg, cluster);
  EXPECT_NE(large.codec, "none");
  EXPECT_LT(large.predicted_seconds,
            selector.choose(8, std::size_t{1} << 22, 1.0, cfg, cluster)
                    .corrected_seconds +
                1e-12);

  // Lane-level feedback is relative: unobserved lanes inherit the mean of
  // the observed ratios (the model's error is mostly lane-independent), so
  // a switch needs contrast — punish the winning lane AND calibrate a
  // rival at face value, and the selector must move to the rival.
  const std::string rival = large.codec == "q4" ? "q6" : "q4";
  selector.observe("omnireduce", large.codec, std::size_t{1} << 22, 1.0,
                   large.predicted_seconds, large.predicted_seconds * 100.0);
  selector.observe("omnireduce", rival, std::size_t{1} << 22, 1.0,
                   large.predicted_seconds, large.predicted_seconds);
  const SelectorDecision after =
      selector.choose(8, std::size_t{1} << 22, 1.0, cfg, cluster);
  EXPECT_EQ(after.codec, rival);
}

TEST(CodecSelector, AutoRunVerifiesAndReportsTheLane) {
  SelectorConfig sel_cfg;
  sel_cfg.candidates = {"omnireduce"};
  sel_cfg.codecs = compress::codec_names();
  OnlineSelector selector(sel_cfg);
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  auto tensors = make_tensors(s);
  SelectorDecision decision;
  const RunStats st =
      selector.run(tensors, s.cfg, s.cluster, &decision, /*verify=*/true);
  EXPECT_TRUE(st.verified);
  EXPECT_EQ(decision.algorithm, "omnireduce");
  EXPECT_FALSE(decision.codec.empty());
  if (decision.codec != "none") {
    EXPECT_EQ(st.codec, decision.codec);
  } else {
    EXPECT_TRUE(st.codec.empty());
  }
}

}  // namespace
}  // namespace omr::core
