#include <gtest/gtest.h>

#include <cmath>

#include "compress/compressors.h"
#include "ddl/end_to_end.h"
#include "ddl/metrics.h"
#include "ddl/timing.h"
#include "ddl/trainer.h"
#include "ddl/workloads.h"
#include "sim/rng.h"
#include "tensor/blocks.h"

namespace omr::ddl {
namespace {

TEST(Workloads, SixProfilesPresent) {
  const auto& all = benchmark_workloads();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "DeepLight");
  EXPECT_EQ(workload("BERT").name, "BERT");
  EXPECT_THROW(workload("nope"), std::invalid_argument);
}

TEST(Workloads, GradientsMatchTable1BlockDensity) {
  sim::Rng rng(1);
  for (const auto& p : benchmark_workloads()) {
    auto grads = sample_gradients(p, 8, 1u << 22, rng);
    const double d = comm_fraction(grads, 256);
    // Within 25% relative (or 0.01 absolute for the very sparse models).
    const double tol = std::max(p.table1_comm_fraction * 0.25, 0.01);
    EXPECT_NEAR(d, p.table1_comm_fraction, tol) << p.name;
  }
}

TEST(Workloads, ElementSparsityInRightRegime) {
  sim::Rng rng(2);
  for (const auto& p : benchmark_workloads()) {
    auto grads = sample_gradients(p, 4, 1u << 21, rng);
    const double sparsity = grads[0].sparsity();
    EXPECT_NEAR(sparsity, p.table1_gradient_sparsity, 0.12) << p.name;
  }
}

TEST(Workloads, VisionModelsAreBlockDense) {
  sim::Rng rng(3);
  for (const char* name : {"VGG19", "ResNet152"}) {
    auto grads = sample_gradients(workload(name), 2, 1u << 20, rng);
    EXPECT_GT(comm_fraction(grads, 256), 0.999) << name;
  }
}

TEST(Metrics, OverlapBreakdownBasics) {
  // 2 workers, 4 blocks: one private to each, one shared, one empty.
  std::vector<tensor::DenseTensor> grads(2, tensor::DenseTensor(4 * 16));
  grads[0][0] = 1.0f;        // block 0: worker 0 only
  grads[1][16] = 1.0f;       // block 1: worker 1 only
  grads[0][32] = 1.0f;       // block 2: both
  grads[1][33] = 1.0f;
  auto breakdown = overlap_breakdown(grads, 16);
  ASSERT_EQ(breakdown.size(), 2u);
  // Transmissions: 2 unique blocks (1 each) + 1 shared (2) = 4 total.
  EXPECT_NEAR(breakdown[0], 0.5, 1e-9);
  EXPECT_NEAR(breakdown[1], 0.5, 1e-9);
  EXPECT_NEAR(union_block_density(grads, 16), 0.75, 1e-9);
}

TEST(Metrics, LstmOverlapIsHotSkewed) {
  sim::Rng rng(4);
  auto lstm = sample_gradients(workload("LSTM"), 8, 1u << 22, rng);
  auto deep = sample_gradients(workload("DeepLight"), 8, 1u << 22, rng);
  auto b_lstm = overlap_breakdown(lstm, 256);
  auto b_deep = overlap_breakdown(deep, 256);
  // Table 2 shape: LSTM is dominated by all-worker overlap, DeepLight by
  // single-worker blocks.
  EXPECT_GT(b_lstm[7], 0.4);
  EXPECT_GT(b_deep[0], 0.35);
  EXPECT_GT(b_deep[0], b_deep[7]);
}

TEST(Timing, OverlapModel) {
  EXPECT_DOUBLE_EQ(iteration_time(0.1, 0.05), 0.1);
  EXPECT_DOUBLE_EQ(iteration_time(0.1, 0.4), 0.4);
  EXPECT_DOUBLE_EQ(scaling_factor(0.1, 0.4), 0.25);
  EXPECT_DOUBLE_EQ(scaling_factor(0.1, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(throughput(0.1, 0.2, 64, 8), 64.0 * 8 / 0.2);
}

TEST(EndToEnd, OmniReduceBeatsRingOnSparseModels) {
  E2EConfig cfg;
  cfg.n_workers = 8;
  cfg.bandwidth_bps = 10e9;
  cfg.sample_elements = 1u << 20;
  for (const char* name : {"DeepLight", "LSTM"}) {
    const auto ring = evaluate_training(workload(name),
                                        CommMethod::kNcclRing, cfg);
    const auto omni = evaluate_training(workload(name),
                                        CommMethod::kOmniReduceDpdk, cfg);
    EXPECT_LT(omni.t_comm_s, ring.t_comm_s) << name;
    EXPECT_GT(omni.scaling_factor, ring.scaling_factor) << name;
  }
}

TEST(EndToEnd, NoSlowdownOnDenseModels) {
  E2EConfig cfg;
  cfg.n_workers = 8;
  cfg.sample_elements = 1u << 20;
  const auto ring =
      evaluate_training(workload("ResNet152"), CommMethod::kNcclRing, cfg);
  const auto omni = evaluate_training(workload("ResNet152"),
                                      CommMethod::kOmniReduceDpdk, cfg);
  // Compute-bound: both hit sf ~ 1; OmniReduce must not hurt throughput.
  EXPECT_GE(omni.throughput, ring.throughput * 0.95);
}

TEST(EndToEnd, ScalingFactorMatchesPaperFig9NcclAnchors) {
  // The compute-time calibration must reproduce the paper's measured NCCL
  // scaling factors at 8 workers / 10 Gbps within ~20%.
  const struct {
    const char* name;
    double sf;
  } anchors[] = {{"DeepLight", 0.044}, {"LSTM", 0.121}, {"NCF", 0.175},
                 {"BERT", 0.287},      {"VGG19", 0.497}, {"ResNet152", 0.948}};
  E2EConfig cfg;
  cfg.n_workers = 8;
  cfg.sample_elements = 1u << 20;
  for (const auto& a : anchors) {
    const auto r = evaluate_training(workload(a.name),
                                     CommMethod::kNcclRing, cfg);
    EXPECT_NEAR(r.scaling_factor, a.sf, a.sf * 0.2 + 0.02) << a.name;
  }
}


TEST(EndToEnd, MethodNamesAndCommVolume) {
  EXPECT_EQ(to_string(CommMethod::kNcclRing), "NCCL(ring)");
  EXPECT_EQ(to_string(CommMethod::kOmniReduceGdr), "OmniReduce-GDR");
  // The extrapolated per-worker volume must match Table 1's column.
  E2EConfig cfg;
  cfg.n_workers = 8;
  cfg.sample_elements = 1u << 20;
  const auto& p = workload("DeepLight");
  const auto r = evaluate_training(p, CommMethod::kOmniReduceDpdk, cfg);
  const double expect_gb =
      p.table1_comm_fraction * static_cast<double>(p.full_model_bytes) / 1e9;
  EXPECT_NEAR(r.comm_gbytes, expect_gb, expect_gb * 0.3);
}

TEST(EndToEnd, HigherBandwidthNeverSlower) {
  // Timing monotonicity property: more bandwidth cannot hurt.
  const auto& p = workload("LSTM");
  double prev = 1e30;
  for (double bw : {10e9, 25e9, 100e9}) {
    E2EConfig cfg;
    cfg.n_workers = 8;
    cfg.bandwidth_bps = bw;
    cfg.sample_elements = 1u << 20;
    const auto r = evaluate_training(p, CommMethod::kOmniReduceGdr, cfg);
    EXPECT_LE(r.t_comm_s, prev * 1.001);
    prev = r.t_comm_s;
  }
}

TEST(Trainer, LearnsWithoutCompression) {
  TrainerConfig cfg;
  cfg.iterations = 150;
  cfg.n_workers = 4;
  TrainResult r = train_distributed(cfg, std::nullopt);
  EXPECT_LT(r.final_loss, r.loss_curve.front() * 0.6);
  EXPECT_GT(r.test_accuracy, 0.8);
  EXPECT_GT(r.test_f1, 0.75);
}

TEST(Trainer, EmbeddingGradientsAreSparse) {
  TrainerConfig cfg;
  cfg.iterations = 5;
  cfg.n_workers = 4;
  cfg.vocab = 8192;  // large vocabulary, few touched rows
  cfg.batch_size = 64;
  TrainResult r = train_distributed(cfg, std::nullopt);
  EXPECT_LT(r.mean_gradient_block_density, 0.5);
}

TEST(Trainer, BlockTopKWithErrorFeedbackConverges) {
  TrainerConfig cfg;
  cfg.iterations = 250;
  cfg.n_workers = 4;
  TrainResult base = train_distributed(cfg, std::nullopt);

  const std::size_t bs = cfg.embed_dim * 4;
  const std::size_t nb =
      tensor::num_blocks(model_dimension(cfg), bs);
  const std::size_t k = std::max<std::size_t>(1, nb / 10);  // 10%
  CompressionSpec spec;
  spec.name = "BlockTopK";
  spec.compressor = [bs, k](const tensor::DenseTensor& g) {
    return compress::block_top_k(g, bs, k);
  };
  TrainResult comp = train_distributed(cfg, spec);
  // Convergence with small degradation (Fig. 11: at most ~1 point of F1).
  EXPECT_GT(comp.test_accuracy, base.test_accuracy - 0.06);
  EXPECT_LT(comp.final_loss, comp.loss_curve.front() * 0.7);
}

TEST(Trainer, ErrorFeedbackBeatsNoFeedbackForRandomK) {
  TrainerConfig cfg;
  cfg.iterations = 250;
  cfg.n_workers = 4;
  cfg.seed = 9;
  const std::size_t bs = cfg.embed_dim * 4;
  const std::size_t nb = tensor::num_blocks(model_dimension(cfg), bs);
  const std::size_t k = std::max<std::size_t>(1, nb / 20);  // 5%

  auto make_spec = [&](bool ef) {
    CompressionSpec spec;
    spec.name = "BlockRandomK";
    spec.error_feedback = ef;
    auto rng = std::make_shared<sim::Rng>(42);
    spec.compressor = [bs, k, rng](const tensor::DenseTensor& g) {
      return compress::block_random_k(g, bs, k, *rng);
    };
    return spec;
  };
  TrainResult with_ef = train_distributed(cfg, make_spec(true));
  TrainResult without = train_distributed(cfg, make_spec(false));
  EXPECT_LE(with_ef.final_loss, without.final_loss * 1.05);
  EXPECT_GE(with_ef.test_accuracy + 0.02, without.test_accuracy);
}

TEST(Trainer, DeterministicGivenSeed) {
  TrainerConfig cfg;
  cfg.iterations = 20;
  TrainResult a = train_distributed(cfg, std::nullopt);
  TrainResult b = train_distributed(cfg, std::nullopt);
  EXPECT_EQ(a.loss_curve, b.loss_curve);
  EXPECT_EQ(a.test_f1, b.test_f1);
}

}  // namespace
}  // namespace omr::ddl
