#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace omr::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(milliseconds(3), 3'000'000);
  EXPECT_EQ(microseconds(5), 5'000);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
}

TEST(Time, FromSecondsRoundsUpTinyDurations) {
  // A 1-byte transfer must not take zero time.
  EXPECT_GE(from_seconds(1e-10), 0);
  EXPECT_EQ(from_seconds(0.6e-9), 1);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, FifoAtEqualTimes) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<Time> fire_times;
  s.schedule_at(10, [&] {
    fire_times.push_back(s.now());
    s.schedule_after(15, [&] { fire_times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 10);
  EXPECT_EQ(fire_times[1], 25);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, CancelTwiceIsNoop) {
  Simulator s;
  EventId id = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(9999));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(100, [&] { ++count; });
  s.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 50);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.schedule_at(10, [&s] {
    EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
  });
  s.run();
}

TEST(Simulator, IdleReflectsPendingEvents) {
  Simulator s;
  EXPECT_TRUE(s.idle());
  EventId id = s.schedule_at(10, [] {});
  EXPECT_FALSE(s.idle());
  s.cancel(id);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, CancelInsideHandlerPreventsLaterEvent) {
  // A handler cancelling an event scheduled after itself (the ack-arrives-
  // before-timeout pattern) must suppress it even mid-run.
  Simulator s;
  bool fired = false;
  EventId timer = s.schedule_at(100, [&] { fired = true; });
  s.schedule_at(50, [&] { EXPECT_TRUE(s.cancel(timer)); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_executed(), 1u);
  EXPECT_EQ(s.events_cancelled(), 1u);
}

TEST(Simulator, CancelThenFireTimeIsNoop) {
  // Running past a cancelled event's time must not resurrect it, and its
  // handle must stay dead afterwards.
  Simulator s;
  int count = 0;
  EventId id = s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.events_cancelled(), 1u);
}

TEST(Simulator, RunUntilDeadlineSplitsEqualTimeGroup) {
  // Deadline exactly at a tied group: the whole group fires (deadline is
  // inclusive), and a later run resumes with FIFO order intact.
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) s.schedule_at(10, [&order, i] { order.push_back(i); });
  for (int i = 4; i < 8; ++i) s.schedule_at(11, [&order, i] { order.push_back(i); });
  s.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.now(), 10);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Simulator, CancelledEventsAreCountedOnce) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(s.schedule_at(10 + i, [] {}));
  for (int i = 0; i < 10; i += 2) EXPECT_TRUE(s.cancel(ids[static_cast<size_t>(i)]));
  for (int i = 0; i < 10; i += 2) EXPECT_FALSE(s.cancel(ids[static_cast<size_t>(i)]));
  s.run();
  EXPECT_EQ(s.events_cancelled(), 5u);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, FarFutureEventsKeepFifoOrder) {
  // Events far beyond the timing-wheel window live in the far heap and
  // migrate into the wheel when the window advances. Equal-time events must
  // still fire in scheduling order after migration, and interleaved
  // near/far schedules must come out globally time-ordered.
  Simulator s;
  std::vector<int> order;
  const Time far = 10'000'000;  // >> wheel window
  for (int i = 0; i < 8; ++i) s.schedule_at(far, [&order, i] { order.push_back(i); });
  s.schedule_at(5, [&order] { order.push_back(100); });
  s.schedule_at(far + 3, [&order] { order.push_back(101); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{100, 0, 1, 2, 3, 4, 5, 6, 7, 101}));
  EXPECT_EQ(s.now(), far + 3);
}

TEST(Simulator, CancelWorksInBothQueueLevels) {
  // One event within the wheel window, one in the far heap; both must be
  // cancellable, and the far heap must stay consistent after the removal.
  Simulator s;
  int fired = 0;
  EventId near_id = s.schedule_at(10, [&] { ++fired; });
  EventId far_id = s.schedule_at(20'000'000, [&] { ++fired; });
  s.schedule_at(30'000'000, [&] { ++fired; });  // keeps the heap non-trivial
  EXPECT_TRUE(s.cancel(far_id));
  EXPECT_TRUE(s.cancel(near_id));
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.events_cancelled(), 2u);
}

TEST(Simulator, RescheduleFromMigratedHandlerKeepsOrder) {
  // A migrated far event scheduling a near follow-up exercises the
  // window-advance path: the follow-up lands in the freshly-based wheel.
  Simulator s;
  std::vector<Time> fire_times;
  s.schedule_at(50'000'000, [&] {
    fire_times.push_back(s.now());
    s.schedule_after(7, [&] { fire_times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 50'000'000);
  EXPECT_EQ(fire_times[1], 50'000'007);
}

TEST(Simulator, LargeCaptureCallablesFallBackToHeap) {
  // Captures beyond EventFn's inline buffer must still work (heap-backed).
  Simulator s;
  std::array<std::uint64_t, 16> big;  // 128 bytes > EventFn::kInlineBytes
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
  std::uint64_t sum = 0;
  s.schedule_at(10, [big, &sum] {
    for (auto v : big) sum += v;
  });
  s.run();
  EXPECT_EQ(sum, 120u);
}

TEST(Simulator, StressMatchesReferenceOrdering) {
  // Randomized schedule/cancel workload cross-checked against a reference
  // model: a stable-sorted list of (time, seq). Mixes near (wheel) and far
  // (heap) horizons so migration is exercised repeatedly.
  Simulator s;
  Rng rng(123);
  struct Ref {
    Time t;
    int tag;
  };
  std::vector<Ref> expected;
  std::vector<int> fired;
  std::vector<EventId> cancellable;
  int tag = 0;
  for (int i = 0; i < 2000; ++i) {
    const Time t = 1 + static_cast<Time>(
        rng.next_below(2) ? rng.next_below(1000) : rng.next_below(40'000'000));
    const int my_tag = tag++;
    EventId id = s.schedule_at(t, [&fired, my_tag] { fired.push_back(my_tag); });
    if (rng.next_below(10) == 0) {
      cancellable.push_back(id);
    } else {
      expected.push_back({t, my_tag});
    }
  }
  for (EventId id : cancellable) EXPECT_TRUE(s.cancel(id));
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.t < b.t; });
  s.run();
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].tag) << "at index " << i;
  }
  EXPECT_EQ(s.events_cancelled(), cancellable.size());
}

TEST(Simulator, NextEventTimePeeksWithoutExecuting) {
  Simulator s;
  EXPECT_EQ(s.next_event_time(), kTimeInfinity);
  int fired = 0;
  s.schedule_at(12, [&] { ++fired; });
  EXPECT_EQ(s.next_event_time(), 12);
  EXPECT_EQ(s.now(), 0);       // the clock did not move
  EXPECT_EQ(fired, 0);         // nothing executed
  s.schedule_at(30'000'000, [&] { ++fired; });  // far heap
  EXPECT_EQ(s.next_event_time(), 12);
  s.run_until(12);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.next_event_time(), 30'000'000);  // wheel drained, heap head
  s.run();
  EXPECT_EQ(s.next_event_time(), kTimeInfinity);
}

TEST(Simulator, NextEventTimeSkipsCancelledHead) {
  // Cancelled wheel-bucket heads must be pruned, not reported: the peek
  // has to agree with what run_until would actually fire next.
  Simulator s;
  int fired_tag = 0;
  EventId a = s.schedule_at(10, [&] { fired_tag = 1; });
  s.schedule_at(10, [&] { fired_tag = 2; });
  s.schedule_at(15, [] {});
  EXPECT_TRUE(s.cancel(a));
  EXPECT_EQ(s.next_event_time(), 10);
  s.run_until(10);
  EXPECT_EQ(fired_tag, 2);
  EXPECT_EQ(s.next_event_time(), 15);
}

TEST(Simulator, NextEventTimeInterleavesWithRunUntil) {
  // Peeking between windows must not perturb the execution sequence: the
  // exact order/times of a plain run must be reproduced.
  auto drive = [](bool peek) {
    Simulator s;
    std::vector<Time> fire_times;
    for (Time t : {3, 3, 7, 20'000'000, 20'000'004}) {
      s.schedule_at(t, [&fire_times, &s] { fire_times.push_back(s.now()); });
    }
    while (true) {
      const Time next = peek ? s.next_event_time() : (s.idle() ? kTimeInfinity : 0);
      if (peek && next == kTimeInfinity) break;
      if (!peek && s.idle()) break;
      s.run_until(peek ? next : kTimeInfinity);
      if (!peek) break;
    }
    return fire_times;
  };
  EXPECT_EQ(drive(true), drive(false));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = r.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, ForkIndependence) {
  Rng a(5);
  Rng c = a.fork();
  EXPECT_NE(a.next_u64(), c.next_u64());
}

}  // namespace
}  // namespace omr::sim
