#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace omr::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(milliseconds(3), 3'000'000);
  EXPECT_EQ(microseconds(5), 5'000);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
}

TEST(Time, FromSecondsRoundsUpTinyDurations) {
  // A 1-byte transfer must not take zero time.
  EXPECT_GE(from_seconds(1e-10), 0);
  EXPECT_EQ(from_seconds(0.6e-9), 1);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, FifoAtEqualTimes) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<Time> fire_times;
  s.schedule_at(10, [&] {
    fire_times.push_back(s.now());
    s.schedule_after(15, [&] { fire_times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], 10);
  EXPECT_EQ(fire_times[1], 25);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, CancelTwiceIsNoop) {
  Simulator s;
  EventId id = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(9999));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(100, [&] { ++count; });
  s.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 50);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.schedule_at(10, [&s] {
    EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
  });
  s.run();
}

TEST(Simulator, IdleReflectsPendingEvents) {
  Simulator s;
  EXPECT_TRUE(s.idle());
  EventId id = s.schedule_at(10, [] {});
  EXPECT_FALSE(s.idle());
  s.cancel(id);
  EXPECT_TRUE(s.idle());
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = r.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, ForkIndependence) {
  Rng a(5);
  Rng c = a.fork();
  EXPECT_NE(a.next_u64(), c.next_u64());
}

}  // namespace
}  // namespace omr::sim
