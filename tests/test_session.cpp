#include <gtest/gtest.h>

#include "core/collectives.h"
#include "core/session.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

using tensor::DenseTensor;

Config cfg16() {
  Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 64;
  cfg.num_streams = 8;
  cfg.charge_bitmap_cost = false;
  return cfg;
}

FabricConfig fab(double loss = 0.0) {
  FabricConfig f;
  f.one_way_latency = sim::microseconds(5);
  f.loss_rate = loss;
  return f;
}

device::DeviceModel gdr() {
  device::DeviceModel d;
  d.gdr = true;
  return d;
}

TEST(Session, BackToBackCollectivesStayCorrect) {
  Session session(cfg16(), 4, ClusterSpec::dedicated(2, fab(), gdr()));
  sim::Rng rng(1);
  for (int iter = 0; iter < 10; ++iter) {
    auto ts = tensor::make_multi_worker(4, 16 * 64, 16, 0.7,
                                        tensor::OverlapMode::kRandom, rng);
    RunStats st = session.allreduce(ts);
    EXPECT_TRUE(st.verified) << "iteration " << iter;
  }
  EXPECT_EQ(session.collectives_run(), 10u);
}

TEST(Session, VirtualTimeAdvancesMonotonically) {
  Session session(cfg16(), 2, ClusterSpec::dedicated(1, fab(), gdr()));
  sim::Rng rng(2);
  sim::Time prev = 0;
  for (int iter = 0; iter < 3; ++iter) {
    auto ts = tensor::make_multi_worker(2, 16 * 32, 16, 0.5,
                                        tensor::OverlapMode::kRandom, rng);
    session.allreduce(ts);
    EXPECT_GT(session.now(), prev);
    prev = session.now();
  }
}

TEST(Session, PerCallStatsAreDeltas) {
  Session session(cfg16(), 3, ClusterSpec::dedicated(1, fab(), gdr()));
  sim::Rng rng(3);
  auto a = tensor::make_multi_worker(3, 16 * 64, 16, 0.5,
                                     tensor::OverlapMode::kRandom, rng);
  auto b = a;
  RunStats first = session.allreduce(a, /*verify=*/false);
  RunStats second = session.allreduce(b, /*verify=*/false);
  // Same workload on an idle fabric: both calls cost the same and count
  // the same messages (counters must not accumulate across calls).
  EXPECT_EQ(first.completion_time, second.completion_time);
  EXPECT_EQ(first.total_messages, second.total_messages);
}

TEST(Session, VaryingTensorSizes) {
  Session session(cfg16(), 4, ClusterSpec::dedicated(2, fab(), gdr()));
  sim::Rng rng(4);
  for (std::size_t n : {16u * 8u, 16u * 200u, 5u, 16u * 64u}) {
    auto ts = tensor::make_multi_worker(4, n, 16, 0.5,
                                        tensor::OverlapMode::kRandom, rng);
    RunStats st = session.allreduce(ts);
    EXPECT_TRUE(st.verified) << n;
  }
}

TEST(Session, SurvivesLossAcrossIterations) {
  Config cfg = cfg16();
  cfg.retransmit_timeout = sim::microseconds(150);
  Session session(cfg, 3, ClusterSpec::dedicated(2, fab(0.03), gdr()));
  sim::Rng rng(5);
  std::uint64_t retx = 0;
  for (int iter = 0; iter < 8; ++iter) {
    auto ts = tensor::make_multi_worker(3, 16 * 128, 16, 0.5,
                                        tensor::OverlapMode::kRandom, rng);
    RunStats st = session.allreduce(ts);
    EXPECT_TRUE(st.verified);
    retx += st.retransmissions;
  }
  EXPECT_GT(retx, 0u);
}

TEST(Session, ColocatedDeployment) {
  Session session(cfg16(), 4, ClusterSpec::colocated(fab(), gdr()));
  sim::Rng rng(6);
  auto ts = tensor::make_multi_worker(4, 16 * 64, 16, 0.5,
                                      tensor::OverlapMode::kRandom, rng);
  EXPECT_TRUE(session.allreduce(ts).verified);
}


TEST(Session, DeterministicReductionAcrossIterations) {
  Config cfg = cfg16();
  cfg.deterministic_reduction = true;
  std::vector<DenseTensor> first_results;
  for (int run = 0; run < 2; ++run) {
    Session session(cfg, 3, ClusterSpec::dedicated(2, fab(), gdr()));
    sim::Rng rng(42);
    DenseTensor last;
    for (int iter = 0; iter < 4; ++iter) {
      auto ts = tensor::make_multi_worker(3, 16 * 64, 16, 0.5,
                                          tensor::OverlapMode::kRandom, rng);
      session.allreduce(ts, /*verify=*/false);
      last = ts[0];
    }
    first_results.push_back(last);
  }
  EXPECT_EQ(first_results[0], first_results[1]);  // bit-identical replays
}

TEST(Session, RejectsBadInput) {
  Session session(cfg16(), 2, ClusterSpec::dedicated(1, fab(), gdr()));
  std::vector<DenseTensor> wrong_count(3, DenseTensor(32));
  EXPECT_THROW(session.allreduce(wrong_count), std::invalid_argument);
  std::vector<DenseTensor> mismatched{DenseTensor(32), DenseTensor(16)};
  EXPECT_THROW(session.allreduce(mismatched), std::invalid_argument);
}

ClusterSpec spec2agg() {
  ClusterSpec cluster = ClusterSpec::dedicated(2);
  cluster.fabric = fab();
  cluster.device = gdr();
  return cluster;
}

TEST(Session, ClusterSpecConstructorRunsCollectives) {
  Session session(cfg16(), 4, spec2agg());
  sim::Rng rng(7);
  auto ts = tensor::make_multi_worker(4, 16 * 64, 16, 0.5,
                                      tensor::OverlapMode::kRandom, rng);
  EXPECT_TRUE(session.allreduce(ts).verified);
  EXPECT_EQ(session.last_report().label, "allreduce");
  EXPECT_EQ(session.last_report().n_workers, 4u);
}

TEST(Session, AllgatherMemberConcatenatesShards) {
  Session session(cfg16(), 3, spec2agg());
  std::vector<DenseTensor> shards;
  for (std::size_t w = 0; w < 3; ++w) {
    DenseTensor s(16 * 8);
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = static_cast<float>(w * 1000 + i);
    }
    shards.push_back(std::move(s));
  }
  DenseTensor out;
  RunStats st = session.allgather(shards, out);
  EXPECT_TRUE(st.verified);
  ASSERT_EQ(out.size(), 3u * 16 * 8);
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t i = 0; i < 16u * 8; ++i) {
      EXPECT_EQ(out[w * 16 * 8 + i], static_cast<float>(w * 1000 + i));
    }
  }
}

TEST(Session, AllgatherMemberMatchesFreeFunction) {
  auto mk = []() {
    std::vector<DenseTensor> shards;
    for (std::size_t w = 0; w < 3; ++w) {
      DenseTensor s(16 * 16);
      for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = static_cast<float>((w + 1) * (i + 1));
      }
      shards.push_back(std::move(s));
    }
    return shards;
  };
  auto shards_a = mk();
  auto shards_b = mk();
  DenseTensor out_free, out_member;
  RunStats free_st =
      run_allgather(shards_a, out_free, cfg16(), spec2agg());
  Session session(cfg16(), 3, spec2agg());
  RunStats member_st = session.allgather(shards_b, out_member);
  EXPECT_EQ(out_free, out_member);
  EXPECT_EQ(free_st.completion_time, member_st.completion_time);
  EXPECT_EQ(free_st.total_messages, member_st.total_messages);
}

TEST(Session, BroadcastMemberDeliversToAll) {
  Session session(cfg16(), 4, spec2agg());
  DenseTensor root(16 * 16);
  for (std::size_t i = 0; i < root.size(); ++i) {
    root[i] = static_cast<float>(i % 97);
  }
  std::vector<DenseTensor> outputs;
  RunStats st = session.broadcast(root, 2, outputs);
  EXPECT_TRUE(st.verified);
  ASSERT_EQ(outputs.size(), 4u);
  for (const auto& o : outputs) EXPECT_EQ(o, root);
  EXPECT_THROW(session.broadcast(root, 4, outputs), std::invalid_argument);
}

TEST(Session, SetAlgorithmRoutesThroughRegistry) {
  Session session(cfg16(), 4, spec2agg());
  session.set_algorithm("omnireduce_kv");
  EXPECT_EQ(session.algorithm(), "omnireduce_kv");
  sim::Rng rng(21);
  auto ts = tensor::make_multi_worker(4, 16 * 64, 16, 0.9,
                                      tensor::OverlapMode::kRandom, rng);
  RunStats st = session.allreduce(ts);
  EXPECT_TRUE(st.verified);
  EXPECT_GT(st.completion_time, 0);
  // Registry dispatch runs on a fresh fabric: the session's own virtual
  // time does not advance, but the collective still counts and reports.
  EXPECT_EQ(session.now(), 0);
  EXPECT_EQ(session.collectives_run(), 1u);
  EXPECT_EQ(session.last_report().algorithm, "omnireduce_kv");
}

TEST(Session, SetAlgorithmUnknownNameThrows) {
  Session session(cfg16(), 2, spec2agg());
  EXPECT_THROW(session.set_algorithm("no_such_algorithm"),
               std::invalid_argument);
  EXPECT_EQ(session.algorithm(), "omnireduce");
}

TEST(Session, SetAlgorithmValidatesCapabilities) {
  // Sparse KV simulates lossless fabrics only; the switch is rejected up
  // front rather than at the next allreduce.
  ClusterSpec lossy = ClusterSpec::dedicated(2);
  lossy.fabric = fab(0.01);
  Session session(cfg16(), 2, lossy);
  EXPECT_THROW(session.set_algorithm("omnireduce_kv"), std::invalid_argument);
  EXPECT_EQ(session.algorithm(), "omnireduce");
}

TEST(Session, SetAlgorithmRestoresNativePath) {
  Session session(cfg16(), 3, spec2agg());
  sim::Rng rng(22);
  auto ts = tensor::make_multi_worker(3, 16 * 64, 16, 0.5,
                                      tensor::OverlapMode::kRandom, rng);
  session.set_algorithm("switchml");
  EXPECT_TRUE(session.allreduce(ts).verified);
  EXPECT_EQ(session.now(), 0);
  session.set_algorithm("omnireduce");
  auto ts2 = tensor::make_multi_worker(3, 16 * 64, 16, 0.5,
                                       tensor::OverlapMode::kRandom, rng);
  EXPECT_TRUE(session.allreduce(ts2).verified);
  EXPECT_GT(session.now(), 0);
  // The native path leaves the report's algorithm field empty so existing
  // report JSON stays byte-identical.
  EXPECT_TRUE(session.last_report().algorithm.empty());
}

TEST(Session, BroadcastMemberMatchesFreeFunction) {
  DenseTensor root(16 * 16);
  for (std::size_t i = 0; i < root.size(); ++i) {
    root[i] = static_cast<float>(i) * 0.5f;
  }
  std::vector<DenseTensor> out_free, out_member;
  RunStats free_st =
      run_broadcast(root, 1, 3, out_free, cfg16(), spec2agg());
  Session session(cfg16(), 3, spec2agg());
  RunStats member_st = session.broadcast(root, 1, out_member);
  ASSERT_EQ(out_free.size(), out_member.size());
  for (std::size_t w = 0; w < out_free.size(); ++w) {
    EXPECT_EQ(out_free[w], out_member[w]);
  }
  EXPECT_EQ(free_st.completion_time, member_st.completion_time);
  EXPECT_EQ(free_st.total_messages, member_st.total_messages);
}

TEST(Session, MixedCollectivesShareOneDeployment) {
  Session session(cfg16(), 3, spec2agg());
  sim::Rng rng(9);
  auto ts = tensor::make_multi_worker(3, 16 * 32, 16, 0.5,
                                      tensor::OverlapMode::kRandom, rng);
  EXPECT_TRUE(session.allreduce(ts).verified);
  std::vector<DenseTensor> shards(3, DenseTensor(16 * 4));
  for (std::size_t w = 0; w < 3; ++w) shards[w][0] = static_cast<float>(w + 1);
  DenseTensor gathered;
  EXPECT_TRUE(session.allgather(shards, gathered).verified);
  std::vector<DenseTensor> outputs;
  EXPECT_TRUE(session.broadcast(gathered, 0, outputs).verified);
  EXPECT_EQ(session.collectives_run(), 3u);
  EXPECT_EQ(session.last_report().label, "broadcast");
}

}  // namespace
}  // namespace omr::core
