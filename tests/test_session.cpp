#include <gtest/gtest.h>

#include "core/session.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

using tensor::DenseTensor;

Config cfg16() {
  Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 64;
  cfg.num_streams = 8;
  cfg.charge_bitmap_cost = false;
  return cfg;
}

FabricConfig fab(double loss = 0.0) {
  FabricConfig f;
  f.one_way_latency = sim::microseconds(5);
  f.loss_rate = loss;
  return f;
}

device::DeviceModel gdr() {
  device::DeviceModel d;
  d.gdr = true;
  return d;
}

TEST(Session, BackToBackCollectivesStayCorrect) {
  Session session(cfg16(), fab(), Deployment::kDedicated, 4, 2, gdr());
  sim::Rng rng(1);
  for (int iter = 0; iter < 10; ++iter) {
    auto ts = tensor::make_multi_worker(4, 16 * 64, 16, 0.7,
                                        tensor::OverlapMode::kRandom, rng);
    RunStats st = session.allreduce(ts);
    EXPECT_TRUE(st.verified) << "iteration " << iter;
  }
  EXPECT_EQ(session.collectives_run(), 10u);
}

TEST(Session, VirtualTimeAdvancesMonotonically) {
  Session session(cfg16(), fab(), Deployment::kDedicated, 2, 1, gdr());
  sim::Rng rng(2);
  sim::Time prev = 0;
  for (int iter = 0; iter < 3; ++iter) {
    auto ts = tensor::make_multi_worker(2, 16 * 32, 16, 0.5,
                                        tensor::OverlapMode::kRandom, rng);
    session.allreduce(ts);
    EXPECT_GT(session.now(), prev);
    prev = session.now();
  }
}

TEST(Session, PerCallStatsAreDeltas) {
  Session session(cfg16(), fab(), Deployment::kDedicated, 3, 1, gdr());
  sim::Rng rng(3);
  auto a = tensor::make_multi_worker(3, 16 * 64, 16, 0.5,
                                     tensor::OverlapMode::kRandom, rng);
  auto b = a;
  RunStats first = session.allreduce(a, /*verify=*/false);
  RunStats second = session.allreduce(b, /*verify=*/false);
  // Same workload on an idle fabric: both calls cost the same and count
  // the same messages (counters must not accumulate across calls).
  EXPECT_EQ(first.completion_time, second.completion_time);
  EXPECT_EQ(first.total_messages, second.total_messages);
}

TEST(Session, VaryingTensorSizes) {
  Session session(cfg16(), fab(), Deployment::kDedicated, 4, 2, gdr());
  sim::Rng rng(4);
  for (std::size_t n : {16u * 8u, 16u * 200u, 5u, 16u * 64u}) {
    auto ts = tensor::make_multi_worker(4, n, 16, 0.5,
                                        tensor::OverlapMode::kRandom, rng);
    RunStats st = session.allreduce(ts);
    EXPECT_TRUE(st.verified) << n;
  }
}

TEST(Session, SurvivesLossAcrossIterations) {
  Config cfg = cfg16();
  cfg.retransmit_timeout = sim::microseconds(150);
  Session session(cfg, fab(0.03), Deployment::kDedicated, 3, 2, gdr());
  sim::Rng rng(5);
  std::uint64_t retx = 0;
  for (int iter = 0; iter < 8; ++iter) {
    auto ts = tensor::make_multi_worker(3, 16 * 128, 16, 0.5,
                                        tensor::OverlapMode::kRandom, rng);
    RunStats st = session.allreduce(ts);
    EXPECT_TRUE(st.verified);
    retx += st.retransmissions;
  }
  EXPECT_GT(retx, 0u);
}

TEST(Session, ColocatedDeployment) {
  Session session(cfg16(), fab(), Deployment::kColocated, 4, 0, gdr());
  sim::Rng rng(6);
  auto ts = tensor::make_multi_worker(4, 16 * 64, 16, 0.5,
                                      tensor::OverlapMode::kRandom, rng);
  EXPECT_TRUE(session.allreduce(ts).verified);
}


TEST(Session, DeterministicReductionAcrossIterations) {
  Config cfg = cfg16();
  cfg.deterministic_reduction = true;
  std::vector<DenseTensor> first_results;
  for (int run = 0; run < 2; ++run) {
    Session session(cfg, fab(), Deployment::kDedicated, 3, 2, gdr());
    sim::Rng rng(42);
    DenseTensor last;
    for (int iter = 0; iter < 4; ++iter) {
      auto ts = tensor::make_multi_worker(3, 16 * 64, 16, 0.5,
                                          tensor::OverlapMode::kRandom, rng);
      session.allreduce(ts, /*verify=*/false);
      last = ts[0];
    }
    first_results.push_back(last);
  }
  EXPECT_EQ(first_results[0], first_results[1]);  // bit-identical replays
}

TEST(Session, RejectsBadInput) {
  Session session(cfg16(), fab(), Deployment::kDedicated, 2, 1, gdr());
  std::vector<DenseTensor> wrong_count(3, DenseTensor(32));
  EXPECT_THROW(session.allreduce(wrong_count), std::invalid_argument);
  std::vector<DenseTensor> mismatched{DenseTensor(32), DenseTensor(16)};
  EXPECT_THROW(session.allreduce(mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace omr::core
