// Engine-level tests for the pluggable fabric: two-tier completion
// semantics against the ideal switch, spine/burst loss recovery
// (Algorithm 2 over a lossy fabric), rack-aware hierarchical reduction,
// placement helpers and per-link reporting.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/engine.h"
#include "core/fabric.h"
#include "core/hierarchical.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

std::vector<tensor::DenseTensor> make_inputs(std::size_t workers,
                                             std::size_t n, double sparsity,
                                             std::uint64_t seed) {
  sim::Rng rng(seed);
  return tensor::make_multi_worker(workers, n, 256, sparsity,
                                   tensor::OverlapMode::kRandom, rng);
}

ClusterSpec base_cluster() {
  ClusterSpec cluster = ClusterSpec::colocated();
  cluster.fabric.worker_bandwidth_bps = 10e9;
  cluster.fabric.aggregator_bandwidth_bps = 10e9;
  cluster.fabric.seed = 11;
  return cluster;
}

TEST(Topology, TwoTierFullBisectionTracksIdealSwitch) {
  const Config cfg = Config::for_transport(Transport::kRdma);

  auto ideal_ts = make_inputs(8, 1 << 16, 0.5, 3);
  ClusterSpec ideal = base_cluster();
  const RunStats ideal_stats = run_allreduce(ideal_ts, cfg, ideal);

  auto tt_ts = make_inputs(8, 1 << 16, 0.5, 3);
  ClusterSpec two_tier = base_cluster();
  two_tier.topology = TopologySpec::two_tier_racks(2, 1.0);
  const RunStats tt_stats = run_allreduce(tt_ts, cfg, two_tier);

  EXPECT_TRUE(ideal_stats.verified);
  EXPECT_TRUE(tt_stats.verified);
  // hop = one_way_latency / 2, so intra-rack crossings cost exactly the
  // ideal latency; cross-rack messages add two extra hops plus two
  // store-and-forward serializations. Completion may only move within
  // that per-hop accounting, never below the ideal fabric.
  EXPECT_GE(tt_stats.completion_time, ideal_stats.completion_time);
  EXPECT_LE(sim::to_milliseconds(tt_stats.completion_time),
            sim::to_milliseconds(ideal_stats.completion_time) * 1.35);
}

TEST(Topology, OversubscriptionSlowsCompletion) {
  const Config cfg = Config::for_transport(Transport::kRdma);

  auto even_ts = make_inputs(8, 1 << 16, 0.0, 5);
  ClusterSpec even = base_cluster();
  even.topology = TopologySpec::two_tier_racks(2, 1.0);
  const RunStats even_stats = run_allreduce(even_ts, cfg, even);

  auto over_ts = make_inputs(8, 1 << 16, 0.0, 5);
  ClusterSpec over = base_cluster();
  over.topology = TopologySpec::two_tier_racks(2, 8.0);
  const RunStats over_stats = run_allreduce(over_ts, cfg, over);

  EXPECT_TRUE(over_stats.verified);
  // 8:1 squeezes every cross-rack byte through 1/8 of the rack edge; the
  // dense run must be markedly spine-bound, not marginally slower.
  EXPECT_GT(over_stats.completion_time, even_stats.completion_time * 2);
}

TEST(Topology, FabricBurstLossRecoversExactly) {
  Config cfg = Config::for_transport(Transport::kDpdk);
  cfg.retransmit_timeout = sim::microseconds(200);
  ClusterSpec cluster = ClusterSpec::dedicated(2);
  cluster.fabric.seed = 21;
  cluster.fabric.burst_loss.p_good_to_bad = 0.02;
  cluster.fabric.burst_loss.p_bad_to_good = 0.3;
  ASSERT_TRUE(cluster.fabric.lossy());

  auto ts = make_inputs(4, 1 << 14, 0.5, 7);
  telemetry::RunReport report =
      run_allreduce_report(ts, cfg, cluster, /*verify=*/true, "burst");
  // Algorithm 2 must mask the bursts: exact result, and the report shows
  // the recovery work (drops happened, retransmissions fixed them).
  EXPECT_TRUE(report.verified);
  EXPECT_GT(report.dropped_messages, 0u);
  EXPECT_GT(report.retransmissions, 0u);
}

TEST(Topology, SpineBurstLossRecoversAndShowsInLinkReports) {
  Config cfg = Config::for_transport(Transport::kDpdk);
  cfg.retransmit_timeout = sim::microseconds(200);
  ClusterSpec cluster = base_cluster();
  cluster.fabric.seed = 23;
  cluster.topology = TopologySpec::two_tier_racks(2, 1.0);
  cluster.topology.spine_burst_loss.p_good_to_bad = 0.05;
  cluster.topology.spine_burst_loss.p_bad_to_good = 0.3;
  ASSERT_TRUE(cluster.topology.spine_lossy());

  auto ts = make_inputs(4, 1 << 14, 0.5, 9);
  const RunStats stats = run_allreduce(ts, cfg, cluster);
  EXPECT_TRUE(stats.verified);
  EXPECT_GT(stats.retransmissions, 0u);
  // 2 racks -> 4 spine links, each reported by name with its own books.
  ASSERT_EQ(stats.links.size(), 4u);
  std::uint64_t link_drops = 0, link_tx = 0;
  for (const auto& l : stats.links) {
    EXPECT_FALSE(l.name.empty());
    link_drops += l.dropped_messages;
    link_tx += l.tx_messages;
  }
  EXPECT_GT(link_drops, 0u);
  EXPECT_GT(link_tx, 0u);
  EXPECT_EQ(link_drops, stats.dropped_messages);
}

TEST(Topology, LinkReportsSerializeOnlyForCustomFabrics) {
  const Config cfg = Config::for_transport(Transport::kRdma);

  auto flat_ts = make_inputs(4, 1 << 12, 0.5, 13);
  telemetry::RunReport flat = run_allreduce_report(
      flat_ts, cfg, base_cluster(), /*verify=*/false, "flat");
  EXPECT_TRUE(flat.links.empty());
  std::ostringstream flat_json;
  flat.write_json(flat_json);
  EXPECT_EQ(flat_json.str().find("\"links\""), std::string::npos);

  auto tt_ts = make_inputs(4, 1 << 12, 0.5, 13);
  ClusterSpec two_tier = base_cluster();
  two_tier.topology = TopologySpec::two_tier_racks(2, 1.0);
  telemetry::RunReport tt =
      run_allreduce_report(tt_ts, cfg, two_tier, /*verify=*/false, "tt");
  ASSERT_FALSE(tt.links.empty());
  std::ostringstream tt_json;
  tt.write_json(tt_json);
  EXPECT_NE(tt_json.str().find("\"links\""), std::string::npos);
  EXPECT_NE(tt_json.str().find("rack0.uplink"), std::string::npos);
}

TEST(Topology, PlacementHelpersResolveRacks) {
  TopologySpec topo = TopologySpec::two_tier_racks(2);
  // Contiguous fill: first half of the workers in rack 0.
  EXPECT_EQ(worker_rack(topo, 0, 4), 0);
  EXPECT_EQ(worker_rack(topo, 1, 4), 0);
  EXPECT_EQ(worker_rack(topo, 2, 4), 1);
  EXPECT_EQ(worker_rack(topo, 3, 4), 1);
  // Aggregators round-robin by default, or follow explicit pinning.
  EXPECT_EQ(aggregator_rack(topo, 0), 0);
  EXPECT_EQ(aggregator_rack(topo, 1), 1);
  topo.worker_racks = {1, 0, 1, 0};
  topo.aggregator_racks = {1};
  EXPECT_EQ(worker_rack(topo, 0, 4), 1);
  EXPECT_EQ(aggregator_rack(topo, 0), 1);
  const std::vector<int> racks = resolve_nic_racks(topo, 4, 1);
  EXPECT_EQ(racks, (std::vector<int>{1, 0, 1, 0, 1}));
}

TEST(Topology, RackAwareHierarchicalReducesExactly) {
  std::vector<std::vector<tensor::DenseTensor>> grads;
  sim::Rng rng(31);
  const std::size_t n = 1 << 13;
  for (int server = 0; server < 4; ++server) {
    auto gpus = tensor::make_multi_worker(2, n, 256, 0.6,
                                          tensor::OverlapMode::kRandom, rng);
    grads.push_back(std::move(gpus));
  }

  ClusterSpec cluster = base_cluster();
  cluster.topology = TopologySpec::two_tier_racks(2, 4.0);
  HierarchicalConfig hier;
  hier.rack_aware = true;
  const Config cfg = Config::for_transport(Transport::kRdma);
  const HierarchicalStats stats =
      run_hierarchical_allreduce(grads, cfg, cluster, hier, /*verify=*/true);

  EXPECT_TRUE(stats.verified);
  EXPECT_GT(stats.rack_reduce, 0);
  EXPECT_EQ(stats.rack_broadcast, stats.rack_reduce);
  EXPECT_GT(stats.inter.completion_time, 0);
  EXPECT_EQ(stats.total, stats.intra_reduce + stats.rack_reduce +
                             stats.inter.completion_time +
                             stats.rack_broadcast + stats.intra_broadcast);
}

TEST(Topology, RackAwareCutsSpineTrafficVsFlat) {
  // Bandwidth-dominated regime (2 MB dense, 8:1 spine): this is where the
  // rack layer pays for its two extra phases.
  const std::size_t n = 1 << 19;
  auto make_grads = [n]() {
    std::vector<std::vector<tensor::DenseTensor>> grads;
    sim::Rng rng(33);
    for (int server = 0; server < 8; ++server) {
      grads.push_back(tensor::make_multi_worker(
          2, n, 256, 0.0, tensor::OverlapMode::kRandom, rng));
    }
    return grads;
  };
  ClusterSpec cluster = base_cluster();
  cluster.topology = TopologySpec::two_tier_racks(2, 8.0);
  const Config cfg = Config::for_transport(Transport::kRdma);

  auto flat_grads = make_grads();
  const HierarchicalStats flat =
      run_hierarchical_allreduce(flat_grads, cfg, cluster, {}, true);
  auto rack_grads = make_grads();
  HierarchicalConfig hier;
  hier.rack_aware = true;
  const HierarchicalStats racked =
      run_hierarchical_allreduce(rack_grads, cfg, cluster, hier, true);

  EXPECT_TRUE(flat.verified);
  EXPECT_TRUE(racked.verified);
  // One representative stream crosses each uplink instead of four member
  // streams: spine bytes must shrink by about the rack size.
  auto spine_bytes = [](const RunStats& st) {
    std::uint64_t b = 0;
    for (const auto& l : st.links) b += l.tx_bytes;
    return b;
  };
  EXPECT_GE(spine_bytes(flat.inter), 3 * spine_bytes(racked.inter));
  // And with dense traffic on a heavily oversubscribed spine, the saved
  // spine time outweighs the two added rack phases end to end.
  EXPECT_LT(racked.total, flat.total);
  // Both modes must agree on the data (same reference sum).
  double diff = 0.0;
  for (std::size_t s = 0; s < flat_grads.size(); ++s) {
    for (std::size_t g = 0; g < flat_grads[s].size(); ++g) {
      diff = std::max(diff, tensor::max_abs_diff(flat_grads[s][g],
                                                 rack_grads[s][g]));
    }
  }
  EXPECT_LE(diff, 1e-4);
}

TEST(Topology, RackAwareIgnoredOnFlatFabric) {
  std::vector<std::vector<tensor::DenseTensor>> grads;
  sim::Rng rng(35);
  grads.push_back(tensor::make_multi_worker(2, 1 << 12, 256, 0.5,
                                            tensor::OverlapMode::kRandom,
                                            rng));
  grads.push_back(tensor::make_multi_worker(2, 1 << 12, 256, 0.5,
                                            tensor::OverlapMode::kRandom,
                                            rng));
  HierarchicalConfig hier;
  hier.rack_aware = true;  // no two-tier topology -> flat inter-server path
  const HierarchicalStats stats = run_hierarchical_allreduce(
      grads, Config::for_transport(Transport::kRdma), base_cluster(), hier,
      true);
  EXPECT_TRUE(stats.verified);
  EXPECT_EQ(stats.rack_reduce, 0);
  EXPECT_EQ(stats.rack_broadcast, 0);
}

}  // namespace
}  // namespace omr::core
