#include <gtest/gtest.h>

#include "core/engine.h"
#include "innet/p4_aggregator.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::innet {
namespace {

using tensor::DenseTensor;

std::vector<DenseTensor> inputs(std::size_t workers, std::size_t n,
                                double sparsity, std::uint64_t seed) {
  sim::Rng rng(seed);
  return tensor::make_multi_worker(workers, n, 256, sparsity,
                                   tensor::OverlapMode::kRandom, rng);
}

TEST(P4Aggregator, ReducesCorrectly) {
  auto ts = inputs(4, 256 * 64, 0.5, 1);
  P4Config cfg;
  core::RunStats st = run_allreduce_innet(ts, cfg);
  EXPECT_TRUE(st.verified);
}

TEST(P4Aggregator, SmallBlockVariant) {
  auto ts = inputs(4, 256 * 64, 0.5, 2);
  P4Config cfg;
  cfg.block_size = 34;  // the SwitchML-style register budget
  core::RunStats st = run_allreduce_innet(ts, cfg);
  EXPECT_TRUE(st.verified);
}

TEST(P4Aggregator, FasterThanServerAggregator) {
  // Hardware multicast removes the N-fold TX serialization of results, so
  // the switch beats a single dedicated server at equal worker line rate.
  auto a = inputs(8, 256 * 512, 0.0, 3);
  auto b = a;
  P4Config p4;
  p4.num_streams = 64;
  core::RunStats sw = run_allreduce_innet(a, p4);

  core::Config ec;
  ec.block_size = p4.block_size;
  ec.packet_elements = p4.block_size;
  ec.num_streams = 64;
  core::FabricConfig fabric;
  fabric.worker_bandwidth_bps = p4.worker_bandwidth_bps;
  fabric.aggregator_bandwidth_bps = p4.worker_bandwidth_bps;
  fabric.one_way_latency = p4.one_way_latency;
  device::DeviceModel dev;
  core::RunStats server = core::run_allreduce(
      b, ec, core::ClusterSpec::dedicated(1, fabric, dev));
  EXPECT_LT(sw.completion_time, server.completion_time);
}

TEST(P4Aggregator, TwoTierFabricPaysPerHopSerialization) {
  // The same workload on a racked fabric: remote workers reach the
  // aggregating switch through rack uplinks, and every multicast copy to
  // a remote rack is store-and-forward serialized on its downlink — so
  // completion must rise with the rack split, and again when the spine
  // is oversubscribed.
  auto flat_ts = inputs(8, 256 * 64, 0.5, 6);
  core::RunStats flat = run_allreduce_innet(flat_ts, P4Config{});
  EXPECT_TRUE(flat.verified);

  P4Config racked_cfg;
  racked_cfg.n_racks = 2;
  auto racked_ts = inputs(8, 256 * 64, 0.5, 6);
  core::RunStats racked = run_allreduce_innet(racked_ts, racked_cfg);
  EXPECT_TRUE(racked.verified);
  EXPECT_GT(racked.completion_time, flat.completion_time);
  EXPECT_FALSE(racked.links.empty());

  P4Config over_cfg = racked_cfg;
  over_cfg.oversubscription = 4.0;
  auto over_ts = inputs(8, 256 * 64, 0.5, 6);
  core::RunStats over = run_allreduce_innet(over_ts, over_cfg);
  EXPECT_TRUE(over.verified);
  EXPECT_GT(over.completion_time, racked.completion_time);
}

TEST(P4Aggregator, FixedPointQuantizationBounded) {
  // Quantization error per element is at most N / scale.
  auto ts = inputs(8, 256 * 32, 0.0, 4);
  auto ref = ts;
  P4Config cfg;
  core::RunStats st = run_allreduce_innet(ts, cfg);
  EXPECT_TRUE(st.verified);
  EXPECT_LE(st.max_error, 8.0 / cfg.fixed_point_scale + 1e-9);
}

TEST(P4Aggregator, SaturationClampsExtremes) {
  // Values so large that the int32-scaled sum saturates: the result is
  // clamped, not wrapped.
  std::vector<DenseTensor> ts(4, DenseTensor(256, 3000.0f));
  P4Config cfg;
  core::Config ec;
  ec.block_size = 256;
  ec.packet_elements = 256;
  ec.switch_multicast = true;
  ec.fixed_point = true;
  ec.fixed_point_scale = cfg.fixed_point_scale;
  core::FabricConfig fabric;
  fabric.aggregator_bandwidth_bps = 40e9;
  device::DeviceModel dev;
  core::RunStats st = core::run_allreduce(
      ts, ec, core::ClusterSpec::dedicated(1, fabric, dev), /*verify=*/false);
  // True sum is 12000 > int32 max / 2^20 = 2048: expect the clamp.
  EXPECT_NEAR(ts[0][0], 2147483647.0 / cfg.fixed_point_scale, 1.0);
  (void)st;
}

}  // namespace
}  // namespace omr::innet
