// Conservative parallel engine (OMR_SIM_THREADS): every run must be
// byte-identical to the serial engine at any thread count. These tests
// drive the same golden setups as test_determinism through the partitioned
// engine and compare every statistic — plus partition-boundary edge cases
// (horizon-adjacent events, zero lookahead, fallback conditions) and the
// deterministic cross-partition commit order at the Network level.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/engine.h"
#include "net/network.h"
#include "runner/psim.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

/// Set/restore one environment variable for the scope of a test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

struct RunSetup {
  Config cfg;
  ClusterSpec cluster;
  std::size_t n_workers = 4;
  std::size_t elements = 65536;
  double sparsity = 0.85;
};

RunSetup make_setup(Transport transport, double loss_rate) {
  RunSetup s;
  s.cfg = Config::for_transport(transport);
  FabricConfig fabric;
  fabric.loss_rate = loss_rate;
  fabric.seed = 7;
  s.cluster = ClusterSpec::dedicated(4, fabric);
  return s;
}

RunStats run_once(const RunSetup& s) {
  sim::Rng rng(42);
  auto tensors =
      tensor::make_multi_worker(s.n_workers, s.elements, s.cfg.block_size,
                                s.sparsity, tensor::OverlapMode::kRandom, rng);
  return run_allreduce(tensors, s.cfg, s.cluster, /*verify=*/false);
}

RunStats run_with_threads(const RunSetup& s, const char* threads) {
  ScopedEnv env("OMR_SIM_THREADS", threads);
  return run_once(s);
}

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.worker_finish, b.worker_finish);
  EXPECT_EQ(a.worker_data_bytes, b.worker_data_bytes);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.acks, b.acks);
  EXPECT_EQ(a.duplicate_resends, b.duplicate_resends);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].tx_bytes, b.links[i].tx_bytes);
    EXPECT_EQ(a.links[i].tx_messages, b.links[i].tx_messages);
    EXPECT_EQ(a.links[i].dropped_messages, b.links[i].dropped_messages);
  }
}

/// Serial vs every requested thread count on one setup.
void expect_parallel_matches_serial(const RunSetup& s) {
  const RunStats serial = run_with_threads(s, "1");
  for (const char* threads : {"2", "4", "8"}) {
    SCOPED_TRACE(std::string("OMR_SIM_THREADS=") + threads);
    expect_identical(serial, run_with_threads(s, threads));
  }
}

TEST(Psim, LosslessRdmaMatchesSerialGolden) {
  // The determinism suite's pre-topology golden pin, through the parallel
  // engine: the partitioned run must land on the exact hardcoded values.
  const RunSetup s = make_setup(Transport::kRdma, 0.0);
  const RunStats a = run_with_threads(s, "4");
  EXPECT_EQ(a.completion_time, 467621);
  EXPECT_EQ(a.worker_finish,
            (std::vector<sim::Time>{464999, 465873, 466747, 467621}));
  EXPECT_EQ(a.worker_data_bytes,
            (std::vector<std::uint64_t>{38912, 38912, 38912, 38912}));
  EXPECT_EQ(a.total_messages, 1176u);
  EXPECT_EQ(a.rounds, 375u);
  expect_parallel_matches_serial(s);
}

TEST(Psim, LossyFabricFallsBackToSerialGolden) {
  // Fabric-level (Bernoulli) loss draws one shared RNG: the engine must
  // fall back to serial and still reproduce the lossy golden pin.
  const RunSetup s = make_setup(Transport::kDpdk, 0.01);
  const RunStats a = run_with_threads(s, "4");
  EXPECT_EQ(a.completion_time, 1353163);
  EXPECT_EQ(a.retransmissions, 78u);
  EXPECT_EQ(a.dropped_messages, 32u);
  EXPECT_EQ(a.duplicate_resends, 38u);
  expect_identical(a, run_with_threads(s, "1"));
}

TEST(Psim, TwoTierRackAlignedMatchesSerial) {
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cluster.topology = TopologySpec::two_tier_racks(2, 4.0);
  expect_parallel_matches_serial(s);
}

TEST(Psim, TwoTierManyWorkersOversubscribedMatchesSerial) {
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.n_workers = 16;
  s.cluster = ClusterSpec::dedicated(4, s.cluster.fabric);
  s.cluster.topology = TopologySpec::two_tier_racks(4, 4.0);
  expect_parallel_matches_serial(s);
}

TEST(Psim, ColocatedMatchesSerial) {
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cluster = ClusterSpec::colocated(s.cluster.fabric);
  expect_parallel_matches_serial(s);
}

TEST(Psim, SpineBurstLossMatchesSerial) {
  // Per-link loss processes run inside the single-threaded commit, each
  // drawing its own RNG in deterministic commit order — unlike the fabric-
  // level process, they are allowed in partitioned mode.
  RunSetup s = make_setup(Transport::kDpdk, 0.0);
  s.cfg.retransmit_timeout = sim::microseconds(500);
  s.n_workers = 8;
  s.cluster = ClusterSpec::dedicated(4, s.cluster.fabric);
  s.cluster.topology = TopologySpec::two_tier_racks(2, 2.0);
  s.cluster.topology.spine_burst_loss.p_good_to_bad = 0.02;
  s.cluster.topology.spine_burst_loss.p_bad_to_good = 0.25;
  const RunStats serial = run_with_threads(s, "1");
  EXPECT_GT(serial.dropped_messages, 0u);
  expect_parallel_matches_serial(s);
}

TEST(Psim, StragglerFaultConfigFallsBackToSerialGolden) {
  // Fault injection forces the serial engine; the straggler golden pin
  // must hold with OMR_SIM_THREADS set.
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cluster.faults.stragglers.mean_delay_ns = 20000.0;
  const RunStats a = run_with_threads(s, "4");
  ASSERT_TRUE(a.completed());
  EXPECT_EQ(a.completion_time, 473036);
  EXPECT_EQ(a.worker_fault_stall_ns,
            (std::vector<sim::Time>{5617803, 6258407, 6115003, 5572876}));
}

TEST(Psim, ZeroLookaheadFallsBackAndCompletes) {
  // one_way_latency = 0 gives no usable lookahead: the engine must warn
  // and run serially — never deadlock, never diverge.
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cluster.fabric.one_way_latency = 0;
  const RunStats serial = run_with_threads(s, "1");
  expect_identical(serial, run_with_threads(s, "8"));
  EXPECT_GT(serial.rounds, 0u);
}

TEST(Psim, HorizonBoundaryStressTinyLookahead) {
  // A 2 ns one-way latency shrinks the safe window to 2 ns: nearly every
  // event lands exactly on a horizon boundary, and the wheel/heap window
  // machinery churns through thousands of sync rounds. Any off-by-one in
  // the horizon arithmetic (events at H vs. H-1) diverges here.
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cluster.fabric.one_way_latency = 2;
  s.elements = 16384;
  expect_parallel_matches_serial(s);
}

TEST(Psim, RepeatedParallelRunsAreSelfConsistent) {
  // The OS scheduler randomizes which partition finishes a window first;
  // commit order must not care. Run the parallel engine repeatedly and
  // demand identical statistics every time.
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cluster.topology = TopologySpec::two_tier_racks(2, 4.0);
  ScopedEnv env("OMR_SIM_THREADS", "4");
  const RunStats first = run_once(s);
  for (int i = 0; i < 4; ++i) expect_identical(first, run_once(s));
}

TEST(Psim, ReportJsonIsByteIdenticalToSerial) {
  // Default telemetry (off): the serialized RunReport — including the
  // simulator event count — must be byte-identical between engines.
  auto report_json = [](const char* threads) {
    ScopedEnv env("OMR_SIM_THREADS", threads);
    RunSetup s = make_setup(Transport::kRdma, 0.0);
    s.cluster.topology = TopologySpec::two_tier_racks(2, 4.0);
    sim::Rng rng(42);
    auto tensors = tensor::make_multi_worker(4, 65536, s.cfg.block_size, 0.85,
                                             tensor::OverlapMode::kRandom, rng);
    const telemetry::RunReport report = run_allreduce_report(
        tensors, s.cfg, s.cluster, /*verify=*/false, "psim");
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  };
  const std::string serial = report_json("1");
  EXPECT_EQ(serial, report_json("2"));
  EXPECT_EQ(serial, report_json("4"));
  EXPECT_NE(serial.find("\"sim_events_executed\""), std::string::npos);
  // The psim *stats section* stays off by default (the run label above is
  // also "psim", so match the JSON key, not the bare string).
  EXPECT_EQ(serial.find(",\"psim\":{"), std::string::npos);
}

TEST(Psim, PsimStatsSectionRecordsPartitionCounters) {
  ScopedEnv env("OMR_SIM_THREADS", "4");
  RunSetup s = make_setup(Transport::kRdma, 0.0);
  s.cluster.topology = TopologySpec::two_tier_racks(2, 4.0);
  s.cluster.telemetry.psim_stats = true;
  sim::Rng rng(42);
  auto tensors = tensor::make_multi_worker(4, 65536, s.cfg.block_size, 0.85,
                                           tensor::OverlapMode::kRandom, rng);
  const telemetry::RunReport report = run_allreduce_report(
      tensors, s.cfg, s.cluster, /*verify=*/false, "psim");
  // 4 threads clamp to the 2 racks: rack-aligned partitioning.
  EXPECT_EQ(report.psim.partitions, 2u);
  EXPECT_GT(report.psim.sync_rounds, 0u);
  ASSERT_EQ(report.psim.partition_events.size(), 2u);
  std::uint64_t total = 0;
  for (std::uint64_t e : report.psim.partition_events) {
    EXPECT_GT(e, 0u);
    total += e;
  }
  // Every logical event runs in exactly one partition: the sum equals the
  // count the serial engine reports for the same run.
  EXPECT_EQ(total, report.sim_events_executed);
  std::ostringstream os;
  report.write_json(os);
  EXPECT_NE(os.str().find("\"psim\""), std::string::npos);
}

TEST(Psim, SimEventCountMatchesSerialExactly) {
  auto events_for = [](const char* threads) {
    ScopedEnv env("OMR_SIM_THREADS", threads);
    RunSetup s = make_setup(Transport::kRdma, 0.0);
    sim::Rng rng(42);
    auto tensors = tensor::make_multi_worker(4, 65536, s.cfg.block_size, 0.85,
                                             tensor::OverlapMode::kRandom, rng);
    return run_allreduce_report(tensors, s.cfg, s.cluster, /*verify=*/false,
                                "ev")
        .sim_events_executed;
  };
  const std::uint64_t serial = events_for("1");
  EXPECT_GT(serial, 0u);
  EXPECT_EQ(serial, events_for("4"));
}

// --- Network-level commit order ------------------------------------------

struct TestMessage final : net::Message {
  explicit TestMessage(std::size_t bytes) : bytes(bytes) {}
  std::size_t wire_bytes() const override { return bytes; }
  std::size_t bytes;
};

/// Records delivery order; used to pin the deterministic commit order of
/// cross-partition mailboxes directly at the Network layer.
class RecordingEndpoint final : public net::Endpoint {
 public:
  explicit RecordingEndpoint(std::vector<std::pair<net::EndpointId, sim::Time>>*
                                 log,
                             sim::Simulator* sim)
      : log_(log), sim_(sim) {}
  void on_message(net::EndpointId from, const net::MessagePtr&) override {
    log_->emplace_back(from, sim_->now());
  }

 private:
  std::vector<std::pair<net::EndpointId, sim::Time>>* log_;
  sim::Simulator* sim_;
};

TEST(Psim, NetworkCommitOrderIsDeterministicAcrossPartitions) {
  // Two partitions send to one destination at identical virtual times.
  // Whatever order the partitions executed in, the commit must reserve the
  // destination's RX in (send time, source endpoint, sequence) order, so
  // delivery times per source are a pure function of the virtual schedule.
  auto run_case = [](bool reverse_issue_order) {
    sim::Simulator serial_sim;
    net::Network net(serial_sim, /*one_way_latency=*/1000);
    std::vector<net::NicId> nics;
    for (int i = 0; i < 3; ++i) nics.push_back(net.add_nic({}));

    sim::Simulator part0, part1;
    std::vector<std::pair<net::EndpointId, sim::Time>> log;
    RecordingEndpoint a(&log, &part0), b(&log, &part1), dst(&log, &part0);
    const net::EndpointId ep_a = net.attach(&a, nics[0]);
    const net::EndpointId ep_b = net.attach(&b, nics[1]);
    const net::EndpointId ep_dst = net.attach(&dst, nics[2]);

    net::PartitionPlan plan;
    plan.sims = {&part0, &part1};
    plan.partition_of_nic = {0, 1, 0};
    plan.lookahead = 1000;
    net.begin_partitioned(std::move(plan));

    const net::MessagePtr payload = net::make_message<TestMessage>(256);
    // Issue the equal-time sends in either partition order: the commit
    // must not care which thread got there first.
    auto send_from_a = [&] {
      net::PartitionScope scope(net, 0);
      net.send(ep_a, ep_dst, payload);
      net.send(ep_a, ep_dst, payload);
    };
    auto send_from_b = [&] {
      net::PartitionScope scope(net, 1);
      net.send(ep_b, ep_dst, payload);
    };
    if (reverse_issue_order) {
      send_from_b();
      send_from_a();
    } else {
      send_from_a();
      send_from_b();
    }
    EXPECT_TRUE(net.has_pending_deliveries());
    net.commit_pending();
    EXPECT_FALSE(net.has_pending_deliveries());
    part0.run();
    part1.run();
    net.end_partitioned();

    std::vector<std::pair<net::EndpointId, sim::Time>> out;
    out.swap(log);
    return std::make_pair(out, std::make_pair(ep_a, ep_b));
  };

  const auto forward = run_case(false);
  const auto reversed = run_case(true);
  EXPECT_EQ(forward.first, reversed.first);
  ASSERT_EQ(forward.first.size(), 3u);
  // Source endpoint order breaks the equal-send-time tie: both of A's
  // packets reserve the RX before B's.
  EXPECT_EQ(forward.first[0].first, forward.second.first);
  EXPECT_EQ(forward.first[1].first, forward.second.first);
  EXPECT_EQ(forward.first[2].first, forward.second.second);
  EXPECT_LT(forward.first[0].second, forward.first[1].second);
  EXPECT_LT(forward.first[1].second, forward.first[2].second);
}

TEST(Psim, PartitionedModeRejectsBadPlans) {
  sim::Simulator serial_sim;
  net::Network net(serial_sim, 1000);
  net.add_nic({});
  sim::Simulator p0;

  net::PartitionPlan missing_nic;
  missing_nic.sims = {&p0};
  missing_nic.lookahead = 10;
  EXPECT_THROW(net.begin_partitioned(std::move(missing_nic)),
               std::invalid_argument);

  net::PartitionPlan zero_lookahead;
  zero_lookahead.sims = {&p0};
  zero_lookahead.partition_of_nic = {0};
  zero_lookahead.lookahead = 0;
  EXPECT_THROW(net.begin_partitioned(std::move(zero_lookahead)),
               std::invalid_argument);

  net::PartitionPlan good;
  good.sims = {&p0};
  good.partition_of_nic = {0};
  good.lookahead = 10;
  net.begin_partitioned(std::move(good));
  EXPECT_TRUE(net.partitioned());
  net.end_partitioned();
  EXPECT_FALSE(net.partitioned());
}

// --- SimDomain / env parsing ----------------------------------------------

TEST(Psim, SimDomainValidatesArguments) {
  sim::Simulator s0;
  EXPECT_THROW(runner::SimDomain({}, 10), std::invalid_argument);
  EXPECT_THROW(runner::SimDomain({&s0}, 0), std::invalid_argument);
  EXPECT_THROW(runner::SimDomain({&s0, nullptr}, 10), std::invalid_argument);
}

TEST(Psim, SimDomainRunsEventsExactlyOnHorizonBoundary) {
  // Two partitions, lookahead 5. Events at t = 4 (== first horizon with
  // N = 0) must execute in round one; events at t = 5 must wait for the
  // next window. The domain must also keep both clocks in lockstep.
  sim::Simulator s0, s1;
  std::vector<int> fired;
  s0.schedule_at(0, [&] { fired.push_back(0); });
  s0.schedule_at(4, [&] { fired.push_back(4); });
  s1.schedule_at(5, [&] { fired.push_back(5); });
  runner::SimDomain domain({&s0, &s1}, 5);
  std::vector<std::pair<std::size_t, sim::Time>> horizons;
  domain.run(
      [&](std::size_t p, sim::Time horizon) {
        if (p == 0) horizons.emplace_back(p, horizon);
        (p == 0 ? s0 : s1).run_until(horizon);
      },
      [] {}, [] { return false; });
  EXPECT_EQ(fired, (std::vector<int>{0, 4, 5}));
  ASSERT_GE(horizons.size(), 2u);
  EXPECT_EQ(horizons[0].second, 4);  // N=0, H = 0 + 5 - 1
  EXPECT_EQ(horizons[1].second, 9);  // N=5, H = 5 + 5 - 1
  EXPECT_EQ(domain.stats().sync_rounds, 2u);
  ASSERT_EQ(domain.stats().partition_events.size(), 2u);
  EXPECT_EQ(domain.stats().partition_events[0], 2u);
  EXPECT_EQ(domain.stats().partition_events[1], 1u);
}

TEST(Psim, SimThreadsFromEnvParsesAndClamps) {
  {
    ScopedEnv env("OMR_SIM_THREADS", nullptr);
    EXPECT_EQ(runner::sim_threads_from_env(), 1u);
  }
  {
    ScopedEnv env("OMR_SIM_THREADS", "6");
    EXPECT_EQ(runner::sim_threads_from_env(), 6u);
  }
  {
    ScopedEnv env("OMR_SIM_THREADS", "0");
    EXPECT_EQ(runner::sim_threads_from_env(), 1u);
  }
  {
    ScopedEnv env("OMR_SIM_THREADS", "auto");
    EXPECT_GE(runner::sim_threads_from_env(), 1u);
  }
}

}  // namespace
}  // namespace omr::core
