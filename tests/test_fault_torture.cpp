// Randomized protocol-torture suite for the fault-injection layer: many
// seeded iterations of (sparsity, topology, loss, fault schedule) tuples.
// The contract under test is graceful degradation (docs/ROBUSTNESS.md):
// every run either completes with a result bit-equal to the serial
// reference reduction, or terminates with a structured failure verdict
// before the bounded simulated-time watchdog — it never hangs. Either
// outcome must replay bit-identically from the same seeds.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/engine.h"
#include "core/session.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

constexpr std::size_t kIterations = 220;

struct TortureCase {
  Config cfg;
  ClusterSpec cluster;
  std::size_t n_workers = 0;
  std::size_t n_elements = 0;
  double block_sparsity = 0.0;
  std::uint64_t tensor_seed = 0;
};

std::vector<tensor::DenseTensor> case_tensors(const TortureCase& tc) {
  sim::Rng rng(tc.tensor_seed);
  return tensor::make_multi_worker(tc.n_workers, tc.n_elements,
                                   tc.cfg.block_size, tc.block_sparsity,
                                   tensor::OverlapMode::kRandom, rng);
}

bool bit_equal(const tensor::DenseTensor& a, const tensor::DenseTensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.size() * sizeof(float)) == 0;
}

/// One torture tuple, derived entirely from the iteration index. Iterations
/// i % 10 == 0 are forced failures (a worker crashes at t=0 and never
/// restarts — the liveness check must convict it); i % 10 == 5 are
/// fault-light (stragglers only — guaranteed to complete). Everything else
/// draws a random mixture of crashes, stalls and flaps.
TortureCase make_case(std::uint64_t i) {
  sim::Rng rng(0xfa017u + i * 0x9e3779b97f4a7c15ULL);
  TortureCase tc;
  tc.n_workers = 2 + rng.next_below(5);
  tc.n_elements = std::size_t{4096} << rng.next_below(3);
  tc.block_sparsity = 0.2 + 0.7 * rng.next_double();
  tc.tensor_seed = rng.next_u64();

  tc.cfg = Config::for_transport(rng.next_bool(0.5) ? Transport::kDpdk
                                                    : Transport::kRdma);
  // Bit-exact completion needs order-independent folding; the serial
  // reference is the ground truth every completing run must reproduce.
  tc.cfg.deterministic_reduction = true;
  tc.cfg.retransmit_timeout = sim::microseconds(200);

  FabricConfig fabric;
  fabric.seed = rng.next_u64() | 1;
  switch (rng.next_below(3)) {
    case 1:
      fabric.loss_rate = 0.005 + 0.015 * rng.next_double();
      break;
    case 2:
      fabric.burst_loss.p_good_to_bad = 0.01;
      fabric.burst_loss.p_bad_to_good = 0.25;
      break;
    default:
      break;
  }
  if (rng.next_bool(0.2)) {
    tc.cluster = ClusterSpec::colocated(fabric);
  } else {
    tc.cluster = ClusterSpec::dedicated(1 + rng.next_below(2), fabric);
  }
  if (rng.next_bool(0.3)) {
    tc.cluster.topology =
        TopologySpec::two_tier_racks(2, rng.next_bool(0.5) ? 1.0 : 4.0);
  }
  const std::size_t n_aggs =
      tc.cluster.deployment == Deployment::kColocated
          ? tc.n_workers
          : tc.cluster.n_aggregator_nodes;

  FaultSpec& f = tc.cluster.faults;
  f.seed = rng.next_u64() | 1;
  f.watchdog = sim::seconds(1);
  // Liveness deadlines sized to the schedule below: every injected outage
  // ends well under 50 ms, so a conviction always names a genuinely dead
  // peer, and forced failures resolve far before the watchdog.
  f.retry.peer_dead_after = sim::milliseconds(50);
  f.retry.unreachable_after = sim::milliseconds(200);

  const std::uint64_t mode = i % 10;
  if (mode == 0) {
    f.crashes.push_back({static_cast<std::uint32_t>(
                             rng.next_below(tc.n_workers)),
                         0, 0});
  } else if (mode == 5) {
    f.stragglers.mean_delay_ns = 2e3 + 2e4 * rng.next_double();
  } else {
    if (rng.next_bool(0.5)) {
      f.stragglers.mean_delay_ns = 3e4 * rng.next_double();
    }
    if (rng.next_bool(0.6)) {
      CrashSpec c;
      c.worker = static_cast<std::uint32_t>(rng.next_below(tc.n_workers));
      c.at = sim::microseconds(10 + static_cast<sim::Time>(
                                        rng.next_below(400)));
      c.restart_after = rng.next_bool(0.85)
                            ? sim::microseconds(20 + static_cast<sim::Time>(
                                                         rng.next_below(300)))
                            : 0;
      f.crashes.push_back(c);
    }
    if (rng.next_bool(0.4)) {
      AggStallSpec s;
      s.aggregator = static_cast<std::uint32_t>(rng.next_below(n_aggs));
      s.at = sim::microseconds(static_cast<sim::Time>(rng.next_below(300)));
      s.duration =
          sim::microseconds(1 + static_cast<sim::Time>(rng.next_below(500)));
      f.agg_stalls.push_back(s);
    }
    if (rng.next_bool(0.3)) {
      NicFlapSpec nf;
      nf.on_aggregator = rng.next_bool(0.5);
      nf.index = static_cast<std::uint32_t>(
          rng.next_below(nf.on_aggregator ? n_aggs : tc.n_workers));
      nf.at = sim::microseconds(static_cast<sim::Time>(rng.next_below(300)));
      nf.duration =
          sim::microseconds(1 + static_cast<sim::Time>(rng.next_below(200)));
      f.nic_flaps.push_back(nf);
    }
    if (tc.cluster.topology.two_tier() && rng.next_bool(0.3)) {
      LinkFlapSpec lf;
      lf.rack = static_cast<std::uint32_t>(rng.next_below(2));
      lf.downlink = rng.next_bool(0.5);
      lf.at = sim::microseconds(static_cast<sim::Time>(rng.next_below(300)));
      lf.duration =
          sim::microseconds(1 + static_cast<sim::Time>(rng.next_below(300)));
      f.link_flaps.push_back(lf);
    }
    if (!f.enabled()) f.stragglers.mean_delay_ns = 1e3;
  }
  return tc;
}

struct Outcome {
  RunStats stats;
  std::vector<tensor::DenseTensor> tensors;
};

Outcome run_case(const TortureCase& tc) {
  Outcome out;
  out.tensors = case_tensors(tc);
  out.stats = run_allreduce(out.tensors, tc.cfg, tc.cluster,
                            /*verify=*/false);
  return out;
}

TEST(FaultTorture, RandomizedSchedulesCompleteExactlyOrReportVerdicts) {
  std::size_t completed = 0;
  std::size_t failed = 0;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    const TortureCase tc = make_case(i);
    const tensor::DenseTensor reference =
        reference_reduce(case_tensors(tc), tc.cfg);
    const Outcome out = run_case(tc);

    if (out.stats.completed()) {
      ++completed;
      // Graceful degradation, completing arm: the result must be *exactly*
      // the serial reference at every worker — faults may cost time, never
      // precision.
      for (std::size_t w = 0; w < tc.n_workers; ++w) {
        EXPECT_TRUE(bit_equal(out.tensors[w], reference))
            << "worker " << w << " diverged from the serial reference";
      }
      EXPECT_EQ(out.stats.failure.verdict, RunVerdict::kCompleted);
    } else {
      ++failed;
      // Failing arm: a structured verdict naming what blocked the run,
      // declared inside the watchdog bound.
      EXPECT_NE(out.stats.failure.verdict, RunVerdict::kCompleted);
      EXPECT_LE(out.stats.failure.at, tc.cluster.faults.watchdog);
      EXPECT_FALSE(out.stats.failure.detail.empty());
      if (out.stats.failure.verdict == RunVerdict::kPeerDead) {
        EXPECT_GE(out.stats.failure.peer, 0);
      }
    }
    if (i % 10 == 0) {
      // Forced failure: the never-restarting crash must be convicted, and
      // attribution must name the crashed worker.
      ASSERT_FALSE(out.stats.completed());
      EXPECT_EQ(out.stats.failure.verdict, RunVerdict::kPeerDead);
      EXPECT_FALSE(out.stats.failure.peer_is_aggregator);
      EXPECT_EQ(out.stats.failure.peer,
                static_cast<std::int32_t>(tc.cluster.faults.crashes[0].worker));
    }
    if (i % 10 == 5) {
      ASSERT_TRUE(out.stats.completed());
      EXPECT_GT(out.stats.worker_fault_stall_ns.size(), 0u);
    }

    if (i % 20 == 3) {
      // Replay check: same seeds, same schedule — the entire outcome
      // (statistics, verdict and the byte content of every tensor, even a
      // partially-reduced one from an aborted run) must be bit-identical.
      const Outcome replay = run_case(tc);
      EXPECT_EQ(out.stats.completion_time, replay.stats.completion_time);
      EXPECT_EQ(out.stats.worker_finish, replay.stats.worker_finish);
      EXPECT_EQ(out.stats.total_messages, replay.stats.total_messages);
      EXPECT_EQ(out.stats.retransmissions, replay.stats.retransmissions);
      EXPECT_EQ(out.stats.dropped_messages, replay.stats.dropped_messages);
      EXPECT_EQ(out.stats.rounds, replay.stats.rounds);
      EXPECT_EQ(out.stats.resyncs, replay.stats.resyncs);
      EXPECT_EQ(out.stats.worker_crashes, replay.stats.worker_crashes);
      EXPECT_EQ(out.stats.worker_retries, replay.stats.worker_retries);
      EXPECT_EQ(out.stats.failure.verdict, replay.stats.failure.verdict);
      EXPECT_EQ(out.stats.failure.peer, replay.stats.failure.peer);
      EXPECT_EQ(out.stats.failure.at, replay.stats.failure.at);
      for (std::size_t w = 0; w < tc.n_workers; ++w) {
        EXPECT_TRUE(bit_equal(out.tensors[w], replay.tensors[w]));
      }
    }
  }
  // Both arms of the contract must actually have been exercised.
  EXPECT_GE(completed, kIterations / 10);
  EXPECT_GE(failed, kIterations / 10);
}

TEST(FaultTorture, WorkerGiveUpConvictsTheAggregator) {
  // Liveness disabled; the aggregator stalls for longer than the
  // worker-side unreachable deadline, so the retry policy's give-up path
  // must fire and name the aggregator node.
  Config cfg = Config::for_transport(Transport::kDpdk);
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(100);
  ClusterSpec cluster = ClusterSpec::dedicated(1);
  cluster.faults.agg_stalls.push_back({0, 0, sim::milliseconds(50)});
  cluster.faults.retry.peer_dead_after = 0;  // aggregator-side check off
  cluster.faults.retry.unreachable_after = sim::milliseconds(2);
  cluster.faults.watchdog = sim::milliseconds(200);

  sim::Rng rng(11);
  auto tensors = tensor::make_multi_worker(2, 8192, cfg.block_size, 0.5,
                                           tensor::OverlapMode::kRandom, rng);
  const RunStats stats = run_allreduce(tensors, cfg, cluster, false);
  ASSERT_FALSE(stats.completed());
  EXPECT_EQ(stats.failure.verdict, RunVerdict::kPeerDead);
  EXPECT_TRUE(stats.failure.peer_is_aggregator);
  EXPECT_EQ(stats.failure.peer, 0);
  EXPECT_GT(stats.failure.at, sim::milliseconds(2));
  EXPECT_LT(stats.failure.at, sim::milliseconds(50));
}

TEST(FaultTorture, RetryCapConvictsTheAggregator) {
  // Same stall, but the give-up trigger is the retry cap instead of the
  // wall deadline.
  Config cfg = Config::for_transport(Transport::kDpdk);
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(100);
  ClusterSpec cluster = ClusterSpec::dedicated(1);
  cluster.faults.agg_stalls.push_back({0, 0, sim::milliseconds(100)});
  cluster.faults.retry.peer_dead_after = 0;
  cluster.faults.retry.unreachable_after = 0;  // wall deadline off
  cluster.faults.retry.max_retries = 3;
  cluster.faults.watchdog = sim::milliseconds(500);

  sim::Rng rng(12);
  auto tensors = tensor::make_multi_worker(2, 8192, cfg.block_size, 0.5,
                                           tensor::OverlapMode::kRandom, rng);
  const RunStats stats = run_allreduce(tensors, cfg, cluster, false);
  ASSERT_FALSE(stats.completed());
  EXPECT_EQ(stats.failure.verdict, RunVerdict::kPeerDead);
  EXPECT_TRUE(stats.failure.peer_is_aggregator);
}

TEST(FaultTorture, CrashWithRestartResyncsAndCompletesBitExact) {
  Config cfg = Config::for_transport(Transport::kDpdk);
  cfg.deterministic_reduction = true;
  cfg.retransmit_timeout = sim::microseconds(200);
  ClusterSpec cluster = ClusterSpec::dedicated(2);
  cluster.fabric.seed = 9;
  cluster.faults.crashes.push_back(
      {1, sim::microseconds(300), sim::microseconds(200)});
  cluster.faults.retry.peer_dead_after = sim::milliseconds(50);
  cluster.faults.watchdog = sim::seconds(1);

  sim::Rng rng(21);
  auto tensors = tensor::make_multi_worker(4, 65536, cfg.block_size, 0.7,
                                           tensor::OverlapMode::kRandom, rng);
  const tensor::DenseTensor reference = reference_reduce(tensors, cfg);
  const RunStats stats = run_allreduce(tensors, cfg, cluster, false);
  ASSERT_TRUE(stats.completed());
  EXPECT_EQ(stats.worker_crashes, 1u);
  EXPECT_GT(stats.resyncs, 0u);
  for (const auto& t : tensors) EXPECT_TRUE(bit_equal(t, reference));
}

TEST(FaultTorture, WatchdogBoundsARunWithAllEscalationDisabled) {
  // Crash without restart, liveness and give-up both off: nothing can
  // convict a peer, so the watchdog must be what terminates the run.
  Config cfg = Config::for_transport(Transport::kDpdk);
  cfg.retransmit_timeout = sim::microseconds(500);
  ClusterSpec cluster = ClusterSpec::dedicated(1);
  cluster.faults.crashes.push_back({0, 0, 0});
  cluster.faults.retry.peer_dead_after = 0;
  cluster.faults.retry.unreachable_after = 0;
  cluster.faults.watchdog = sim::milliseconds(20);

  sim::Rng rng(31);
  auto tensors = tensor::make_multi_worker(3, 8192, cfg.block_size, 0.5,
                                           tensor::OverlapMode::kRandom, rng);
  const RunStats stats = run_allreduce(tensors, cfg, cluster, false);
  ASSERT_FALSE(stats.completed());
  EXPECT_EQ(stats.failure.verdict, RunVerdict::kWatchdog);
  EXPECT_EQ(stats.failure.at, sim::milliseconds(20));
  EXPECT_EQ(stats.completion_time, sim::milliseconds(20));
}

TEST(FaultTorture, FaultedRunReportsAreByteIdentical) {
  // Same seed + FaultSpec => byte-identical serialized RunReport, for a
  // recovering schedule and for one that ends in a verdict alike.
  const auto report_json = [](sim::Time restart_after) {
    Config cfg = Config::for_transport(Transport::kDpdk);
    FabricConfig fabric;
    fabric.seed = 7;
    fabric.loss_rate = 0.01;
    ClusterSpec cluster = ClusterSpec::dedicated(2, fabric);
    cluster.telemetry.enabled = true;
    cluster.faults.crashes.push_back(
        {1, sim::microseconds(200), restart_after});
    cluster.faults.retry.peer_dead_after = sim::milliseconds(5);
    cluster.faults.watchdog = sim::milliseconds(100);
    sim::Rng rng(51);
    auto tensors = tensor::make_multi_worker(3, 16384, cfg.block_size, 0.6,
                                             tensor::OverlapMode::kRandom,
                                             rng);
    const telemetry::RunReport report =
        run_allreduce_report(tensors, cfg, cluster, /*verify=*/false);
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  };
  const std::string completing = report_json(sim::microseconds(100));
  EXPECT_EQ(completing, report_json(sim::microseconds(100)));
  EXPECT_NE(completing.find("\"verdict\":\"completed\""), std::string::npos);
  const std::string failing = report_json(0);
  EXPECT_EQ(failing, report_json(0));
  EXPECT_NE(failing.find("\"verdict\":\"peer_dead\""), std::string::npos);
}

TEST(FaultTorture, SessionRejectsFaultSpecs) {
  ClusterSpec cluster = ClusterSpec::dedicated(1);
  cluster.faults.stragglers.mean_delay_ns = 1e3;
  EXPECT_THROW(Session(Config{}, 2, cluster), std::invalid_argument);
}

TEST(FaultTorture, InvalidFaultSpecsAreRejected) {
  sim::Rng rng(41);
  auto tensors = tensor::make_multi_worker(2, 4096, 256, 0.5,
                                           tensor::OverlapMode::kRandom, rng);
  Config cfg;
  {
    ClusterSpec cluster = ClusterSpec::dedicated(1);
    cluster.faults.crashes.push_back({7, 0, 0});  // unknown worker
    EXPECT_THROW(run_allreduce(tensors, cfg, cluster, false),
                 std::invalid_argument);
  }
  {
    ClusterSpec cluster = ClusterSpec::dedicated(1);
    cluster.faults.link_flaps.push_back({0, false, 0, 1000});
    // Link flaps need a two-tier fabric to name a rack uplink.
    EXPECT_THROW(run_allreduce(tensors, cfg, cluster, false),
                 std::invalid_argument);
  }
  {
    ClusterSpec cluster = ClusterSpec::dedicated(1);
    cluster.faults.stragglers.mean_delay_ns = 1e3;
    cluster.faults.watchdog = 0;  // a faulted run must be time-bounded
    EXPECT_THROW(run_allreduce(tensors, cfg, cluster, false),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace omr::core
