// Integration of the quantization compressors with the distributed trainer:
// the §2.1 taxonomy's second family must plug into the same Compressor
// interface and converge (QSGD/TernGrad are unbiased, so they work with or
// without error feedback).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "compress/compressors.h"
#include "compress/quantizers.h"
#include "compress/wire_codec.h"
#include "ddl/trainer.h"
#include "tensor/blocks.h"

namespace omr::ddl {
namespace {

TrainerConfig quick_config() {
  TrainerConfig cfg;
  cfg.iterations = 200;
  cfg.n_workers = 4;
  return cfg;
}

TEST(TrainerQuantizers, QsgdConverges) {
  const TrainerConfig cfg = quick_config();
  const TrainResult base = train_distributed(cfg, std::nullopt);

  CompressionSpec spec;
  spec.name = "QSGD-8";
  spec.error_feedback = false;  // unbiased: plain compressed SGD converges
  auto rng = std::make_shared<sim::Rng>(11);
  spec.compressor = [rng](const tensor::DenseTensor& g) {
    return compress::qsgd_quantize(g, 8, *rng);
  };
  const TrainResult q = train_distributed(cfg, spec);
  EXPECT_LT(q.final_loss, q.loss_curve.front() * 0.8);
  EXPECT_GT(q.test_accuracy, base.test_accuracy - 0.08);
}

TEST(TrainerQuantizers, TernGradConvergesWithHigherVariance) {
  const TrainerConfig cfg = quick_config();
  CompressionSpec spec;
  spec.name = "TernGrad";
  spec.error_feedback = false;
  auto rng = std::make_shared<sim::Rng>(13);
  spec.compressor = [rng](const tensor::DenseTensor& g) {
    return compress::terngrad_quantize(g, *rng);
  };
  const TrainResult t = train_distributed(cfg, spec);
  // Ternary gradients are noisy but must still make clear progress.
  EXPECT_LT(t.final_loss, t.loss_curve.front() * 0.9);
}

TEST(TrainerQuantizers, QuantizerComposesWithBlockSparsifier) {
  // OmniReduce's complementarity claim (§2.1): sparsify blocks, then
  // quantize what remains — both volume axes shrink. Composition order
  // matters: error feedback must wrap the *biased* sparsifier only; the
  // unbiased quantizer is applied after, outside the feedback loop
  // (feeding stochastic quantization noise back through the memory is a
  // positive-feedback loop and diverges — asserted below).
  const TrainerConfig cfg = quick_config();
  const std::size_t bs = cfg.embed_dim * 4;
  const std::size_t nb = tensor::num_blocks(model_dimension(cfg), bs);
  const std::size_t k = std::max<std::size_t>(1, nb / 10);

  CompressionSpec spec;
  spec.name = "TopK(EF)+QSGD";
  spec.error_feedback = false;  // EF handled inside, around top-k only
  auto ef = std::make_shared<compress::ErrorFeedback>(model_dimension(cfg));
  auto rng = std::make_shared<sim::Rng>(17);
  spec.compressor = [bs, k, ef, rng](const tensor::DenseTensor& g) {
    tensor::DenseTensor sparse =
        ef->step(g, [bs, k](const tensor::DenseTensor& x) {
          return compress::block_top_k(x, bs, k);
        });
    return compress::qsgd_quantize(sparse, 64, *rng);
  };
  const TrainResult r = train_distributed(cfg, spec);
  EXPECT_LT(r.final_loss, r.loss_curve.front() * 0.85);
  EXPECT_LT(r.mean_gradient_block_density, 0.15);
}

TEST(TrainerQuantizers, WireCodecWithErrorFeedbackConverges) {
  // The inline wire codecs are deterministic and biased
  // (round-to-nearest), so — unlike QSGD above — error feedback around
  // them is the *correct* composition: the residual memory recirculates
  // the rounding error and training converges. This is the trainer-side
  // contract behind CodecSpec::error_feedback in the transport.
  const TrainerConfig cfg = quick_config();
  const TrainResult base = train_distributed(cfg, std::nullopt);
  for (compress::WireCodec c :
       {compress::WireCodec::kQ8, compress::WireCodec::kQ4}) {
    SCOPED_TRACE(compress::codec_name(c));
    CompressionSpec spec;
    spec.name = std::string("EF(wire-") + compress::codec_name(c) + ")";
    spec.error_feedback = true;
    spec.compressor = [c](const tensor::DenseTensor& g) {
      tensor::DenseTensor out = g;
      compress::codec_roundtrip(out.values().data(), out.size(), c);
      return out;
    };
    const TrainResult r = train_distributed(cfg, spec);
    EXPECT_LT(r.final_loss, r.loss_curve.front() * 0.85);
    EXPECT_GT(r.test_accuracy, base.test_accuracy - 0.1);
  }
}

TEST(TrainerQuantizers, ErrorFeedbackAroundStochasticQuantizerDiverges) {
  // The anti-pattern: EF wrapping QSGD accumulates quantization noise in
  // the memory and blows up. Kept as a regression guard for the
  // documentation claim above.
  const TrainerConfig cfg = quick_config();
  const std::size_t bs = cfg.embed_dim * 4;
  const std::size_t nb = tensor::num_blocks(model_dimension(cfg), bs);
  CompressionSpec spec;
  spec.name = "EF(TopK+QSGD)";
  spec.error_feedback = true;
  auto rng = std::make_shared<sim::Rng>(17);
  spec.compressor = [bs, nb, rng](const tensor::DenseTensor& g) {
    tensor::DenseTensor sparse =
        compress::block_top_k(g, bs, std::max<std::size_t>(1, nb / 10));
    return compress::qsgd_quantize(sparse, 16, *rng);
  };
  const TrainResult r = train_distributed(cfg, spec);
  EXPECT_GT(r.final_loss, r.loss_curve.front());
}

}  // namespace
}  // namespace omr::ddl
