#include <gtest/gtest.h>

#include <cmath>

#include "compress/quantizers.h"
#include "sim/rng.h"

namespace omr::compress {
namespace {

using tensor::DenseTensor;

DenseTensor random_dense(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  DenseTensor t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = static_cast<float>(rng.next_normal());
  }
  return t;
}

TEST(Qsgd, ZeroInputStaysZero) {
  sim::Rng rng(1);
  DenseTensor z(64);
  EXPECT_EQ(qsgd_quantize(z, 4, rng).nnz(), 0u);
}

TEST(Qsgd, ValuesLieOnGrid) {
  sim::Rng rng(2);
  DenseTensor g = random_dense(256, 3);
  const std::size_t levels = 8;
  DenseTensor q = qsgd_quantize(g, levels, rng);
  const double norm = g.l2_norm();
  for (std::size_t i = 0; i < q.size(); ++i) {
    const double level = std::abs(q[i]) / norm * static_cast<double>(levels);
    EXPECT_NEAR(level, std::round(level), 1e-4) << i;
    // Sign preserved (or zero).
    if (q[i] != 0.0f) {
      EXPECT_EQ(q[i] < 0, g[i] < 0);
    }
  }
}

TEST(Qsgd, UnbiasedEstimator) {
  DenseTensor g = random_dense(64, 4);
  sim::Rng rng(5);
  const double bias = estimate_bias(
      g, [&]() { return qsgd_quantize(g, 4, rng); }, 4000);
  // Quantization step is ~norm/4 ~ 2; averaging 4000 trials shrinks the
  // stochastic part to ~2/sqrt(4000) ~ 0.03 per coordinate.
  EXPECT_LT(bias, 0.15);
}

TEST(Qsgd, MoreLevelsLessError) {
  DenseTensor g = random_dense(1024, 6);
  sim::Rng rng(7);
  double prev = 1e30;
  for (std::size_t levels : {1u, 4u, 16u, 64u}) {
    DenseTensor q = qsgd_quantize(g, levels, rng);
    double err = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      err += std::pow(static_cast<double>(g[i]) - q[i], 2);
    }
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(Qsgd, BitsPerElement) {
  EXPECT_DOUBLE_EQ(qsgd_bits_per_element(1), 2.0);   // sign + 1 bit
  EXPECT_DOUBLE_EQ(qsgd_bits_per_element(3), 3.0);
  EXPECT_DOUBLE_EQ(qsgd_bits_per_element(255), 9.0);
  sim::Rng rng(8);
  EXPECT_THROW(qsgd_quantize(DenseTensor(4), 0, rng), std::invalid_argument);
}

TEST(TernGrad, OutputsAreTernary) {
  sim::Rng rng(9);
  DenseTensor g = random_dense(512, 10);
  float s = 0;
  for (std::size_t i = 0; i < g.size(); ++i) s = std::max(s, std::abs(g[i]));
  DenseTensor q = terngrad_quantize(g, rng);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_TRUE(q[i] == 0.0f || std::abs(std::abs(q[i]) - s) < 1e-6f) << q[i];
  }
}

TEST(TernGrad, Unbiased) {
  DenseTensor g = random_dense(32, 11);
  sim::Rng rng(12);
  const double bias = estimate_bias(
      g, [&]() { return terngrad_quantize(g, rng); }, 6000);
  EXPECT_LT(bias, 0.2);
}

TEST(TernGrad, MaxMagnitudeAlwaysKept) {
  sim::Rng rng(13);
  DenseTensor g(std::vector<float>{0.1f, -3.0f, 0.2f});
  DenseTensor q = terngrad_quantize(g, rng);
  EXPECT_FLOAT_EQ(q[1], -3.0f);  // |g|/s = 1 -> kept with probability 1
}

TEST(EstimateBias, RejectsZeroTrials) {
  DenseTensor g(4);
  EXPECT_THROW(estimate_bias(g, [&]() { return g; }, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace omr::compress
