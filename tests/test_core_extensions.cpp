// Tests for the §7 extensions: reduction operators, numeric
// reproducibility (deterministic fold order), and bucketed AllReduce.
#include <gtest/gtest.h>

#include "core/bucketing.h"
#include "core/engine.h"
#include "sim/rng.h"
#include "tensor/blocks.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

using tensor::DenseTensor;

Config small_config() {
  Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 64;
  cfg.num_streams = 8;
  cfg.charge_bitmap_cost = false;
  return cfg;
}

FabricConfig fabric() {
  FabricConfig f;
  f.one_way_latency = sim::microseconds(5);
  return f;
}

device::DeviceModel gdr() {
  device::DeviceModel d;
  d.gdr = true;
  return d;
}

std::vector<DenseTensor> inputs(std::size_t workers, std::size_t n, double s,
                                std::uint64_t seed) {
  sim::Rng rng(seed);
  return tensor::make_multi_worker(workers, n, 16, s,
                                   tensor::OverlapMode::kRandom, rng);
}

// ---------------------------------------------------------------------------
// Reduction operators
// ---------------------------------------------------------------------------

TEST(ReduceOps, MinOverContributedBlocks) {
  // Two workers, two blocks: block 0 contributed by both, block 1 by one.
  std::vector<DenseTensor> ts(2, DenseTensor(32));
  for (int i = 0; i < 16; ++i) {
    ts[0][static_cast<size_t>(i)] = static_cast<float>(i + 1);
    ts[1][static_cast<size_t>(i)] = static_cast<float>(16 - i);
  }
  for (int i = 16; i < 32; ++i) ts[0][static_cast<size_t>(i)] = -5.0f;
  Config cfg = small_config();
  cfg.op = ReduceOp::kMin;
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(1, fabric(), gdr()));
  EXPECT_TRUE(st.verified);
  // Block 0: element-wise min of the two workers.
  EXPECT_FLOAT_EQ(ts[1][0], 1.0f);
  EXPECT_FLOAT_EQ(ts[1][15], 1.0f);
  EXPECT_FLOAT_EQ(ts[0][8], std::min(9.0f, 8.0f));
  // Block 1: only worker 0 contributed; its values win (transparent zeros).
  EXPECT_FLOAT_EQ(ts[1][20], -5.0f);
}

TEST(ReduceOps, MaxRandomized) {
  auto ts = inputs(5, 16 * 64, 0.7, 3);
  Config cfg = small_config();
  cfg.op = ReduceOp::kMax;
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(2, fabric(), gdr()));
  EXPECT_TRUE(st.verified);
}

TEST(ReduceOps, MinUnderLossRecovery) {
  auto ts = inputs(4, 16 * 64, 0.6, 4);
  Config cfg = small_config();
  cfg.op = ReduceOp::kMin;
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(200);
  FabricConfig f = fabric();
  f.loss_rate = 0.02;
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(2, f, gdr()));
  EXPECT_TRUE(st.verified);
}

TEST(ReduceOps, MaxDenseModeIncludesZeros) {
  // Dense mode folds every worker: zeros participate, so max(-3, 0) = 0.
  std::vector<DenseTensor> ts(2, DenseTensor(16));
  ts[0].fill(-3.0f);
  Config cfg = small_config();
  cfg.op = ReduceOp::kMax;
  cfg.dense_mode = true;
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(1, fabric(), gdr()));
  EXPECT_TRUE(st.verified);
  EXPECT_FLOAT_EQ(ts[0][3], 0.0f);
}

TEST(ReduceOps, FixedPointRejectsMinMax) {
  auto ts = inputs(2, 16 * 8, 0.5, 5);
  Config cfg = small_config();
  cfg.op = ReduceOp::kMin;
  cfg.fixed_point = true;
  EXPECT_THROW(run_allreduce(ts, cfg, ClusterSpec::dedicated(1, fabric(), gdr())),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Deterministic reduction (§7 numeric reproducibility)
// ---------------------------------------------------------------------------

TEST(Deterministic, BitIdenticalAcrossArrivalOrders) {
  // Perturb arrival order via different worker bandwidths; deterministic
  // mode must produce bit-identical floats anyway.
  Config cfg = small_config();
  cfg.deterministic_reduction = true;
  std::vector<DenseTensor> results;
  for (double bw : {10e9, 7e9}) {
    sim::Rng rng(6);
    // Adversarial values: large magnitude spread so float addition order
    // visibly matters.
    std::vector<DenseTensor> ts(6, DenseTensor(16 * 32));
    for (std::size_t w = 0; w < ts.size(); ++w) {
      for (std::size_t i = 0; i < ts[w].size(); ++i) {
        ts[w][i] = rng.next_float(-1, 1) *
                   static_cast<float>(1 << (3 * (w % 5)));
      }
    }
    FabricConfig f = fabric();
    f.worker_bandwidth_bps = bw;
    // Stagger workers by attaching different aggregator counts per run is
    // not needed: bandwidth change alone reorders arrivals.
    RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(3, f, gdr()), /*verify=*/false);
    (void)st;
    results.push_back(ts[0]);
  }
  EXPECT_EQ(results[0], results[1]);  // bit-identical
}

TEST(Deterministic, MatchesWidOrderedReference) {
  Config cfg = small_config();
  cfg.deterministic_reduction = true;
  auto ts = inputs(4, 16 * 64, 0.5, 7);
  // Reference folded in worker order (the order the engine guarantees).
  DenseTensor ref(ts[0].size());
  for (const auto& t : ts) ref.add_inplace(t);
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(2, fabric(), gdr()), /*verify=*/false);
  (void)st;
  // In-order fold of <= 4 floats equals the reference fold exactly only if
  // the engine used the same order; allow zero tolerance.
  EXPECT_EQ(tensor::max_abs_diff(ts[0], ref), 0.0);
}

TEST(Deterministic, WorksUnderLoss) {
  Config cfg = small_config();
  cfg.deterministic_reduction = true;
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(150);
  FabricConfig f = fabric();
  f.loss_rate = 0.05;
  auto ts = inputs(4, 16 * 64, 0.5, 8);
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(2, f, gdr()));
  EXPECT_TRUE(st.verified);
}

// ---------------------------------------------------------------------------
// Bucketed AllReduce
// ---------------------------------------------------------------------------

TEST(Bucketing, ReducesEveryTensor) {
  sim::Rng rng(9);
  const std::vector<std::size_t> shapes{100, 17, 1, 300};
  std::vector<std::vector<DenseTensor>> buckets(3);
  std::vector<DenseTensor> expect;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    expect.emplace_back(shapes[i]);
  }
  for (auto& worker : buckets) {
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      DenseTensor t(shapes[i]);
      for (std::size_t j = 0; j < t.size(); ++j) {
        t[j] = rng.next_float(-1, 1);
        expect[i][j] += t[j];
      }
      worker.push_back(std::move(t));
    }
  }
  RunStats st = run_allreduce_bucketed(buckets, small_config(), ClusterSpec::dedicated(2, fabric(), gdr()));
  EXPECT_TRUE(st.verified);
  for (const auto& worker : buckets) {
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      EXPECT_LE(tensor::max_abs_diff(worker[i], expect[i]), 1e-4);
    }
  }
}

TEST(Bucketing, RejectsMismatchedLayouts) {
  std::vector<std::vector<DenseTensor>> buckets(2);
  buckets[0].emplace_back(10);
  buckets[1].emplace_back(11);
  EXPECT_THROW(run_allreduce_bucketed(buckets, small_config(), ClusterSpec::dedicated(1, fabric(), gdr())),
               std::invalid_argument);
  buckets[1] = {DenseTensor(10), DenseTensor(3)};
  EXPECT_THROW(run_allreduce_bucketed(buckets, small_config(), ClusterSpec::dedicated(1, fabric(), gdr())),
               std::invalid_argument);
}

TEST(Bucketing, SingleBucketMatchesPlainAllReduce) {
  auto flat = inputs(3, 16 * 32, 0.5, 10);
  std::vector<std::vector<DenseTensor>> buckets(3);
  for (std::size_t w = 0; w < 3; ++w) buckets[w].push_back(flat[w]);
  RunStats a = run_allreduce(flat, small_config(), ClusterSpec::dedicated(1, fabric(), gdr()));
  RunStats b = run_allreduce_bucketed(buckets, small_config(), ClusterSpec::dedicated(1, fabric(), gdr()));
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(buckets[0][0], flat[0]);
}


// ---------------------------------------------------------------------------
// Straggler start offsets
// ---------------------------------------------------------------------------

TEST(Stragglers, CorrectWithSkewedStarts) {
  auto ts = inputs(4, 16 * 128, 0.6, 11);
  FabricConfig f = fabric();
  f.worker_start_offsets = {0, sim::microseconds(500), 0,
                            sim::milliseconds(2)};
  RunStats st = run_allreduce(ts, small_config(), ClusterSpec::dedicated(2, f, gdr()));
  EXPECT_TRUE(st.verified);
  // Completion is gated by the last worker.
  EXPECT_GE(st.completion_time, sim::milliseconds(2));
}

TEST(Stragglers, OffsetCountMismatchThrows) {
  auto ts = inputs(3, 16 * 16, 0.5, 12);
  FabricConfig f = fabric();
  f.worker_start_offsets = {0, 0};
  EXPECT_THROW(run_allreduce(ts, small_config(), ClusterSpec::dedicated(1, f, gdr())),
               std::invalid_argument);
}

TEST(Stragglers, DelayIsAdditiveNotAmplified) {
  auto base_in = inputs(4, 16 * 512, 0.5, 13);
  auto skew_in = base_in;
  FabricConfig f = fabric();
  RunStats base = run_allreduce(base_in, small_config(), ClusterSpec::dedicated(2, f, gdr()));
  f.worker_start_offsets = {0, 0, sim::milliseconds(1), 0};
  RunStats skew = run_allreduce(skew_in, small_config(), ClusterSpec::dedicated(2, f, gdr()));
  const sim::Time extra = skew.completion_time - base.completion_time;
  EXPECT_GE(extra, sim::microseconds(900));
  EXPECT_LE(extra, sim::microseconds(1100));
}


// ---------------------------------------------------------------------------
// fp16 wire format (value_bytes)
// ---------------------------------------------------------------------------

TEST(WireFormat, HalfPrecisionHalvesTransmissionTime) {
  Config cfg = small_config();
  cfg.num_streams = 32;
  auto fp32_in = inputs(4, 16 * 4096, 0.0, 14);
  auto fp16_in = fp32_in;
  FabricConfig f = fabric();
  f.one_way_latency = sim::microseconds(1);
  RunStats fp32 = run_allreduce(fp32_in, cfg, ClusterSpec::dedicated(4, f, gdr()));
  cfg.value_bytes = 2;
  RunStats fp16 = run_allreduce(fp16_in, cfg, ClusterSpec::dedicated(4, f, gdr()));
  EXPECT_TRUE(fp16.verified);
  const double ratio = static_cast<double>(fp32.completion_time) /
                       static_cast<double>(fp16.completion_time);
  EXPECT_GT(ratio, 1.45);  // < 2.0 because headers/metadata do not shrink
  EXPECT_LT(ratio, 2.05);
  EXPECT_NEAR(static_cast<double>(fp32.worker_data_bytes[0]),
              2.0 * static_cast<double>(fp16.worker_data_bytes[0]), 1.0);
}


// ---------------------------------------------------------------------------
// Device staging (Appendix B) through the engine
// ---------------------------------------------------------------------------

TEST(DeviceStaging, NonGdrCompletionHasPcieFloor) {
  // At extreme sparsity the protocol finishes almost instantly, but a
  // non-GDR worker must still stage the whole tensor through host memory.
  const std::size_t n = 4 << 20;  // 16 MB: PCIe floor ~1.3 ms dominates
  sim::Rng rng(21);
  auto ts = tensor::make_multi_worker(4, n, 256, 0.99,
                                      tensor::OverlapMode::kRandom, rng);
  device::DeviceModel dev;  // gdr = false
  Config cfg = small_config();
  cfg.block_size = 256;
  cfg.packet_elements = 1024;
  cfg.num_streams = 64;
  FabricConfig f = fabric();
  f.worker_bandwidth_bps = 100e9;
  f.aggregator_bandwidth_bps = 100e9;
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(4, f, dev));
  EXPECT_TRUE(st.verified);
  const sim::Time floor = dev.full_copy_cost(n * 4);
  EXPECT_GE(st.completion_time, floor);
  // And GDR removes the floor.
  auto ts2 = tensor::make_multi_worker(4, n, 256, 0.99,
                                       tensor::OverlapMode::kRandom, rng);
  device::DeviceModel g;
  g.gdr = true;
  RunStats st2 = run_allreduce(ts2, cfg, ClusterSpec::dedicated(4, f, g));
  EXPECT_LT(st2.completion_time, floor);
}

TEST(DeviceStaging, ChunkPrefetchDelaysLateBlocks) {
  // A tensor whose only non-zero block sits at the end cannot be sent
  // before its staging chunk lands: completion >= chunk_ready(last byte).
  const std::size_t n = 4 << 20;  // 16 MB > several 4 MB chunks
  std::vector<DenseTensor> ts(2, DenseTensor(n));
  ts[0][n - 1] = 1.0f;
  ts[1][n - 1] = 2.0f;
  device::DeviceModel dev;  // staged
  Config cfg = small_config();
  cfg.block_size = 256;
  cfg.packet_elements = 256;
  FabricConfig f = fabric();
  f.worker_bandwidth_bps = 100e9;
  f.aggregator_bandwidth_bps = 100e9;
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(1, f, dev));
  EXPECT_TRUE(st.verified);
  EXPECT_GE(st.completion_time, dev.chunk_ready(n * 4 - 1));
}

}  // namespace
}  // namespace omr::core
