// Observability tests: the protocol counters exposed through RunStats must
// reflect what the algorithms actually did (acks under Algorithm 2,
// duplicate result resends under loss, round counts vs union density).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "ddl/metrics.h"
#include "sim/rng.h"
#include "tensor/blocks.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

using tensor::DenseTensor;

Config cfg16() {
  Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 16;  // w = 1: round accounting is exact
  cfg.num_streams = 4;
  cfg.charge_bitmap_cost = false;
  return cfg;
}

FabricConfig fab(double loss = 0.0) {
  FabricConfig f;
  f.one_way_latency = sim::microseconds(5);
  f.loss_rate = loss;
  f.seed = 99;
  return f;
}

device::DeviceModel gdr() {
  device::DeviceModel d;
  d.gdr = true;
  return d;
}

TEST(ProtocolStats, Alg1SendsNoAcks) {
  sim::Rng rng(1);
  auto ts = tensor::make_multi_worker(4, 16 * 64, 16, 0.8,
                                      tensor::OverlapMode::kRandom, rng);
  RunStats st = run_allreduce(ts, cfg16(), ClusterSpec::dedicated(2, fab(), gdr()));
  EXPECT_EQ(st.acks, 0u);
  EXPECT_EQ(st.duplicate_resends, 0u);
}

TEST(ProtocolStats, Alg2AcksForUnownedBlocks) {
  // Disjoint non-zero sets: every requested block is owned by exactly one
  // worker, so the other N-1 respond with acks each round.
  sim::Rng rng(2);
  auto ts = tensor::make_multi_worker(4, 16 * 256, 16, 0.9,
                                      tensor::OverlapMode::kNone, rng);
  Config cfg = cfg16();
  cfg.loss_recovery = true;
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(2, fab(), gdr()));
  EXPECT_GT(st.acks, 0u);
}

TEST(ProtocolStats, DuplicateResendsAppearUnderLoss) {
  sim::Rng rng(3);
  auto ts = tensor::make_multi_worker(4, 16 * 512, 16, 0.5,
                                      tensor::OverlapMode::kRandom, rng);
  Config cfg = cfg16();
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(150);
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(2, fab(0.08), gdr()));
  EXPECT_TRUE(st.verified);
  EXPECT_GT(st.retransmissions, 0u);
  // With 8% loss some result packets are lost, so duplicate-triggered
  // resends must occur.
  EXPECT_GT(st.duplicate_resends, 0u);
}

TEST(ProtocolStats, RoundsTrackUnionDensity) {
  // With w = 1 the total round count is the number of distinct non-zero
  // block positions across workers (the union), plus one bootstrap round
  // per stream.
  sim::Rng rng(4);
  const std::size_t n = 16 * 400;
  auto ts = tensor::make_multi_worker(3, n, 16, 0.85,
                                      tensor::OverlapMode::kRandom, rng);
  const double union_density = ddl::union_block_density(ts, 16);
  const auto union_blocks = static_cast<std::uint64_t>(
      union_density * static_cast<double>(tensor::num_blocks(n, 16)) + 0.5);
  Config cfg = cfg16();
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(1, fab(), gdr()));
  const StreamLayout layout = StreamLayout::build(n, cfg);
  EXPECT_EQ(st.rounds, union_blocks + layout.streams.size());
}

TEST(ProtocolStats, DenseRoundsEqualBlocksPlusBootstrap) {
  sim::Rng rng(5);
  const std::size_t n = 16 * 128;
  auto ts = tensor::make_multi_worker(2, n, 16, 0.0,
                                      tensor::OverlapMode::kRandom, rng);
  Config cfg = cfg16();
  RunStats st = run_allreduce(ts, cfg, ClusterSpec::dedicated(1, fab(), gdr()));
  const StreamLayout layout = StreamLayout::build(n, cfg);
  EXPECT_EQ(st.rounds, 128u + layout.streams.size());
}

TEST(ProtocolStats, MessagesScaleWithWorkers) {
  for (std::size_t workers : {2u, 4u, 8u}) {
    sim::Rng rng(6);
    auto ts = tensor::make_multi_worker(workers, 16 * 64, 16, 0.5,
                                        tensor::OverlapMode::kAll, rng);
    RunStats st = run_allreduce(ts, cfg16(), ClusterSpec::dedicated(1, fab(), gdr()));
    // Worker TX messages only (stats count worker NICs).
    EXPECT_GT(st.total_messages, 0u);
  }
}

}  // namespace
}  // namespace omr::core
