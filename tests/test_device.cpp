#include <gtest/gtest.h>

#include "device/device_model.h"
#include "sim/time.h"

namespace omr::device {
namespace {

TEST(DeviceModel, BitmapCostSteepForTinyBlocks) {
  DeviceModel d;
  const std::size_t n = 25 * 1000 * 1000;  // ~100 MB of floats
  const sim::Time bs1 = d.bitmap_cost(n, 1);
  const sim::Time bs16 = d.bitmap_cost(n, 16);
  const sim::Time bs256 = d.bitmap_cost(n, 256);
  // Fig. 20 shape: ~40 ms at bs=1, negligible (<3 ms) from bs=16 on.
  EXPECT_GT(sim::to_milliseconds(bs1), 30.0);
  EXPECT_LT(sim::to_milliseconds(bs16), 3.0);
  EXPECT_LT(bs256, bs16);
  EXPECT_LT(bs16, bs1);
}

TEST(DeviceModel, BitmapCostHasBandwidthFloor) {
  DeviceModel d;
  // Even with huge blocks, the scan reads the tensor once.
  const std::size_t n = 25 * 1000 * 1000;
  EXPECT_GE(d.bitmap_cost(n, 1 << 20),
            sim::from_seconds(n * 4.0 / d.gpu_mem_bandwidth_Bps));
}

TEST(DeviceModel, ChunkReadyIsStaircase) {
  DeviceModel d;
  d.chunk_bytes = 4 << 20;
  const sim::Time first = d.chunk_ready(0);
  EXPECT_EQ(first, d.chunk_ready((4 << 20) - 1));  // same chunk
  EXPECT_GT(d.chunk_ready(4 << 20), first);        // next chunk later
  EXPECT_EQ(first, sim::from_seconds((4 << 20) / d.pcie_bandwidth_Bps));
}

TEST(DeviceModel, GdrEliminatesStaging) {
  DeviceModel d;
  d.gdr = true;
  EXPECT_EQ(d.chunk_ready(123456789), 0);
  EXPECT_EQ(d.full_copy_cost(100 << 20), 0);
}

TEST(DeviceModel, FullCopyScalesLinearly) {
  DeviceModel d;
  const sim::Time t1 = d.full_copy_cost(100 << 20);
  const sim::Time t2 = d.full_copy_cost(200 << 20);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01);
  // 100 MB at 13 GB/s is ~8 ms: that is the Fig. 4 RDMA plateau.
  EXPECT_NEAR(sim::to_milliseconds(t1), 8.0, 1.0);
}

}  // namespace
}  // namespace omr::device
