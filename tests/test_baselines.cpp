#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/agsparse.h"
#include "baselines/parameter_server.h"
#include "baselines/ring.h"
#include "baselines/sparcml.h"
#include "baselines/switchml.h"
#include "sim/rng.h"
#include "tensor/coo.h"
#include "tensor/generators.h"

namespace omr::baselines {
namespace {

// These tests pin the baseline implementations themselves; callers go
// through the CollectiveRegistry adapters (see test_algorithms.cpp).
using namespace detail;

using tensor::DenseTensor;

BaselineConfig fast_cfg() {
  BaselineConfig cfg;
  cfg.bandwidth_bps = 10e9;
  cfg.one_way_latency = sim::microseconds(5);
  cfg.chunk_elements = 1024;
  return cfg;
}

std::vector<DenseTensor> inputs(std::size_t n_workers, std::size_t n,
                                double sparsity, std::uint64_t seed) {
  sim::Rng rng(seed);
  return tensor::make_multi_worker(n_workers, n, 16, sparsity,
                                   tensor::OverlapMode::kRandom, rng);
}

// ---------------------------------------------------------------------------
// Ring AllReduce
// ---------------------------------------------------------------------------

TEST(Ring, CorrectAcrossWorkerCounts) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 8u}) {
    auto ts = inputs(n, 4096, 0.5, n);
    BaselineStats st = ring_allreduce(ts, fast_cfg());
    EXPECT_TRUE(n == 1 || st.verified) << n << " workers";
  }
}

TEST(Ring, TensorSmallerThanWorkers) {
  auto ts = inputs(8, 4, 0.0, 3);
  BaselineStats st = ring_allreduce(ts, fast_cfg());
  EXPECT_TRUE(st.verified);
}

TEST(Ring, TimeMatchesAnalyticModel) {
  // T_ring = 2(N-1)(alpha + S/(N*B)); generous 15% tolerance for chunking
  // and header overheads.
  const std::size_t n_elem = 1 << 20;  // 4 MB
  auto ts = inputs(8, n_elem, 0.0, 4);
  BaselineConfig cfg = fast_cfg();
  BaselineStats st = ring_allreduce(ts, cfg);
  const double alpha = sim::to_seconds(cfg.one_way_latency);
  const double expect =
      2.0 * 7.0 * (alpha + n_elem * 4.0 * 8.0 / (8.0 * cfg.bandwidth_bps));
  EXPECT_NEAR(sim::to_seconds(st.completion_time), expect, expect * 0.15);
}

TEST(Ring, ScalesWithWorkers) {
  // Per the model, total time grows with N for fixed S.
  const std::size_t n_elem = 1 << 20;
  auto t2 = inputs(2, n_elem, 0.0, 5);
  auto t8 = inputs(8, n_elem, 0.0, 5);
  const auto s2 = ring_allreduce(t2, fast_cfg());
  const auto s8 = ring_allreduce(t8, fast_cfg());
  // 2(N-1)/N: N=2 -> 1.0, N=8 -> 1.75.
  const double ratio = static_cast<double>(s8.completion_time) /
                       static_cast<double>(s2.completion_time);
  EXPECT_NEAR(ratio, 1.75, 0.1);
}

TEST(Ring, WireBytesMatchTheory) {
  const std::size_t n_elem = 1 << 16;
  auto ts = inputs(4, n_elem, 0.0, 6);
  BaselineStats st = ring_allreduce(ts, fast_cfg());
  // Each worker transmits 2(N-1)/N * S bytes of payload (plus headers).
  const double payload = 4.0 * 2.0 * 3.0 / 4.0 * n_elem * 4.0;
  EXPECT_GE(static_cast<double>(st.total_tx_bytes), payload);
  EXPECT_LE(static_cast<double>(st.total_tx_bytes), payload * 1.1);
}

TEST(RecursiveDoubling, Correct) {
  for (std::size_t n : {2u, 4u, 8u}) {
    auto ts = inputs(n, 2048, 0.3, 7);
    BaselineStats st = recursive_doubling_allreduce(ts, fast_cfg());
    EXPECT_TRUE(st.verified);
  }
}

TEST(RecursiveDoubling, RejectsNonPowerOfTwo) {
  auto ts = inputs(3, 256, 0.0, 8);
  EXPECT_THROW(recursive_doubling_allreduce(ts, fast_cfg()),
               std::invalid_argument);
}

TEST(RecursiveDoubling, LowerLatencyThanRingForTinyInput) {
  // log2(N) alpha terms vs 2(N-1): for tiny tensors RD wins.
  auto a = inputs(8, 64, 0.0, 9);
  auto b = a;
  const auto ring = ring_allreduce(a, fast_cfg());
  const auto rd = recursive_doubling_allreduce(b, fast_cfg());
  EXPECT_LT(rd.completion_time, ring.completion_time);
}

// ---------------------------------------------------------------------------
// AGsparse
// ---------------------------------------------------------------------------

TEST(AgSparse, ReducesCorrectly) {
  auto dense = inputs(4, 4096, 0.9, 10);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
  std::vector<tensor::CooTensor> outs;
  BaselineStats st = agsparse_allreduce(coo, outs, fast_cfg());
  DenseTensor expect = tensor::reference_sum(dense);
  EXPECT_LE(tensor::max_abs_diff(tensor::coo_to_dense(outs[0]), expect), 1e-4);
  EXPECT_GT(st.completion_time, 0);
}

TEST(AgSparse, GlooSlowerThanNccl) {
  auto dense = inputs(8, 1 << 18, 0.9, 11);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
  std::vector<tensor::CooTensor> o1, o2;
  const auto nccl = agsparse_allreduce(coo, o1, fast_cfg(), AgStack::kNccl);
  const auto gloo = agsparse_allreduce(coo, o2, fast_cfg(), AgStack::kGloo);
  EXPECT_GT(gloo.completion_time, nccl.completion_time);
}

TEST(AgSparse, TimeGrowsWithWorkers) {
  // AGsparse gathers N copies: poor scalability (§3.4).
  sim::Time prev = 0;
  for (std::size_t n : {2u, 4u, 8u}) {
    auto dense = inputs(n, 1 << 18, 0.9, 12);
    std::vector<tensor::CooTensor> coo;
    for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
    std::vector<tensor::CooTensor> outs;
    const auto st = agsparse_allreduce(coo, outs, fast_cfg());
    EXPECT_GT(st.completion_time, prev);
    prev = st.completion_time;
  }
}

TEST(RingAllgatherBytes, HandlesUnevenPayloads) {
  const std::vector<std::size_t> payloads{1000, 0, 500000, 20};
  std::uint64_t tx = 0;
  const sim::Time t = ring_allgather_bytes(payloads, fast_cfg(), &tx);
  EXPECT_GT(t, 0);
  // Every worker forwards every other worker's payload once: (N-1) * sum.
  std::size_t sum = 0;
  for (auto p : payloads) sum += p;
  EXPECT_GE(tx, 3 * sum);
}

TEST(RingAllgatherBytes, SingleWorkerInstant) {
  EXPECT_EQ(ring_allgather_bytes({12345}, fast_cfg()), 0);
}

// ---------------------------------------------------------------------------
// SparCML
// ---------------------------------------------------------------------------

TEST(Sparcml, SsarCorrect) {
  auto dense = inputs(4, 8192, 0.95, 13);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
  tensor::CooTensor result;
  BaselineStats st = sparcml_allreduce(coo, result, fast_cfg(),
                                       SparcmlVariant::kSsarSplitAllgather);
  DenseTensor expect = tensor::reference_sum(dense);
  EXPECT_LE(tensor::max_abs_diff(tensor::coo_to_dense(result), expect), 1e-4);
  EXPECT_GT(st.completion_time, 0);
}

TEST(Sparcml, DsarCorrectAndCheaperWhenDense) {
  // Low sparsity: the reduced partitions exceed rho, DSAR's dense switch
  // must beat pure sparse representation.
  auto dense = inputs(8, 1 << 16, 0.2, 14);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
  tensor::CooTensor r1, r2;
  const auto ssar = sparcml_allreduce(coo, r1, fast_cfg(),
                                      SparcmlVariant::kSsarSplitAllgather);
  const auto dsar = sparcml_allreduce(coo, r2, fast_cfg(),
                                      SparcmlVariant::kDsarSplitAllgather);
  EXPECT_LT(dsar.completion_time, ssar.completion_time);
}

TEST(Sparcml, RecursiveDoublingCorrect) {
  auto dense = inputs(4, 4096, 0.98, 15);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
  tensor::CooTensor result;
  BaselineStats st = sparcml_allreduce(coo, result, fast_cfg(),
                                       SparcmlVariant::kSsarRecursiveDoubling);
  DenseTensor expect = tensor::reference_sum(dense);
  EXPECT_LE(tensor::max_abs_diff(tensor::coo_to_dense(result), expect), 1e-4);
  EXPECT_GT(st.completion_time, 0);
}

TEST(Sparcml, DispatchPicksRdForTinyInputs) {
  EXPECT_EQ(sparcml_choose_variant(1 << 20, 100, 8),
            SparcmlVariant::kSsarRecursiveDoubling);
  EXPECT_EQ(sparcml_choose_variant(1 << 20, 1 << 16, 8),
            SparcmlVariant::kSsarSplitAllgather);
  EXPECT_EQ(sparcml_choose_variant(1 << 20, 1 << 19, 8),
            SparcmlVariant::kDsarSplitAllgather);
}

// ---------------------------------------------------------------------------
// Parameter server
// ---------------------------------------------------------------------------

TEST(PsDense, CorrectDedicatedAndColocated) {
  for (bool colocated : {false, true}) {
    auto ts = inputs(4, 8192, 0.3, 16);
    BaselineStats st = ps_dense_allreduce(ts, fast_cfg(), 4, colocated);
    EXPECT_TRUE(st.verified) << (colocated ? "colocated" : "dedicated");
  }
}

TEST(PsDense, SingleServerBottleneck) {
  auto a = inputs(4, 1 << 18, 0.0, 17);
  auto b = a;
  const auto many = ps_dense_allreduce(a, fast_cfg(), 4, false);
  const auto one = ps_dense_allreduce(b, fast_cfg(), 1, false);
  EXPECT_GT(one.completion_time, many.completion_time);
}

TEST(PsSparse, ReducesCorrectly) {
  auto dense = inputs(4, 8192, 0.9, 18);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
  tensor::CooTensor result;
  BaselineStats st = ps_sparse_allreduce(coo, result, fast_cfg(), 4, false);
  DenseTensor expect = tensor::reference_sum(dense);
  EXPECT_LE(tensor::max_abs_diff(tensor::coo_to_dense(result), expect), 1e-4);
  EXPECT_GT(st.completion_time, 0);
}

TEST(PsSparse, EmptyWorker) {
  std::vector<tensor::CooTensor> coo(3);
  for (auto& t : coo) t.dim = 1024;
  coo[1].keys = {5, 700};
  coo[1].values = {1.0f, 2.0f};
  tensor::CooTensor result;
  ps_sparse_allreduce(coo, result, fast_cfg(), 2, false);
  EXPECT_EQ(result.nnz(), 2u);
}

TEST(Parallax, PicksCheaperPath) {
  // Very sparse input: the sparse PS path must win over dense ring.
  auto sparse = inputs(4, 1 << 18, 0.99, 19);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : sparse) coo.push_back(tensor::dense_to_coo(t));
  tensor::CooTensor r;
  const auto ps = ps_sparse_allreduce(coo, r, fast_cfg(), 4, false);
  auto ring_copy = sparse;
  const auto ring = ring_allreduce(ring_copy, fast_cfg(), false);
  const auto oracle = parallax_allreduce(sparse, fast_cfg());
  EXPECT_EQ(oracle.completion_time,
            std::min(ps.completion_time, ring.completion_time));
  // Dense input: ring must win.
  auto dense = inputs(4, 1 << 18, 0.0, 20);
  auto ring_copy2 = dense;
  const auto ring2 = ring_allreduce(ring_copy2, fast_cfg(), false);
  const auto oracle2 = parallax_allreduce(dense, fast_cfg());
  EXPECT_EQ(oracle2.completion_time, ring2.completion_time);
}

// ---------------------------------------------------------------------------
// SwitchML*
// ---------------------------------------------------------------------------

TEST(SwitchMl, DenseStreamingCorrect) {
  auto ts = inputs(4, 16384, 0.9, 21);
  core::FabricConfig fabric;
  fabric.worker_bandwidth_bps = 10e9;
  fabric.aggregator_bandwidth_bps = 10e9;
  fabric.one_way_latency = sim::microseconds(5);
  core::RunStats st = switchml_allreduce(ts, fabric, 4);
  EXPECT_TRUE(st.verified);
  // Dense mode: full tensor transmitted regardless of sparsity.
  EXPECT_EQ(st.worker_data_bytes[0], 16384u * 4u);
}

}  // namespace
}  // namespace omr::baselines
