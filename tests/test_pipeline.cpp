#include <gtest/gtest.h>

#include "ddl/pipeline.h"

namespace omr::ddl {
namespace {

std::vector<PipelineLayer> uniform_layers(std::size_t count,
                                          std::size_t bytes_each,
                                          double backward_each) {
  return std::vector<PipelineLayer>(count,
                                    PipelineLayer{bytes_each, backward_each});
}

TEST(Pipeline, FullOverlapWhenCommIsCheap) {
  // Comm finishes well inside each layer's backward slot: iteration time
  // equals pure backward time plus only the last bucket's tail.
  auto layers = uniform_layers(10, 1 << 20, 0.010);
  const auto comm = [](std::size_t) { return 0.001; };
  PipelineResult r = simulate_iteration(layers, 1 << 20, comm);
  EXPECT_EQ(r.buckets, 10u);
  EXPECT_NEAR(r.backward_seconds, 0.100, 1e-9);
  EXPECT_NEAR(r.iteration_seconds, 0.101, 1e-9);  // backward + 1 tail bucket
  EXPECT_NEAR(r.exposed_comm_seconds, 0.001, 1e-9);
}

TEST(Pipeline, CommBoundWhenNetworkIsSlow) {
  auto layers = uniform_layers(10, 1 << 20, 0.001);
  const auto comm = [](std::size_t) { return 0.010; };
  PipelineResult r = simulate_iteration(layers, 1 << 20, comm);
  // First bucket ready at 1 ms; ten buckets serialize at 10 ms each.
  EXPECT_NEAR(r.iteration_seconds, 0.001 + 0.100, 1e-9);
  EXPECT_NEAR(r.exposed_comm_seconds, r.iteration_seconds - 0.010, 1e-9);
}

TEST(Pipeline, MaxModelIsTightForManyBuckets) {
  // With fine buckets, iteration ~ max(backward, comm) + epsilon, which is
  // the closed-form used by ddl::iteration_time.
  auto layers = uniform_layers(100, 1 << 18, 0.002);
  const auto comm = [](std::size_t bytes) {
    return static_cast<double>(bytes) * 8.0 / 10e9 * 1.2;  // ~10 Gbps
  };
  PipelineResult r = simulate_iteration(layers, 1 << 18, comm);
  const double comm_total = r.comm_busy_seconds;
  const double lower = std::max(r.backward_seconds, comm_total);
  EXPECT_GE(r.iteration_seconds, lower);
  EXPECT_LE(r.iteration_seconds, lower * 1.05);
}

TEST(Pipeline, SingleBucketCannotOverlap) {
  // One giant bucket: comm only starts after the full backward pass.
  auto layers = uniform_layers(10, 1 << 20, 0.005);
  const auto comm = [](std::size_t) { return 0.050; };
  PipelineResult r = simulate_iteration(layers, 100 << 20, comm);
  EXPECT_EQ(r.buckets, 1u);
  EXPECT_NEAR(r.iteration_seconds, 0.050 + 0.050, 1e-9);
  EXPECT_NEAR(r.exposed_comm_seconds, 0.050, 1e-9);
}

TEST(Pipeline, ForwardShiftsEverything) {
  auto layers = uniform_layers(2, 1 << 20, 0.01);
  const auto comm = [](std::size_t) { return 0.001; };
  PipelineResult a = simulate_iteration(layers, 1 << 20, comm, 0.0);
  PipelineResult b = simulate_iteration(layers, 1 << 20, comm, 0.5);
  EXPECT_NEAR(b.iteration_seconds - a.iteration_seconds, 0.5, 1e-9);
}

TEST(Pipeline, ZeroBucketThrows) {
  auto layers = uniform_layers(1, 10, 0.01);
  EXPECT_THROW(
      simulate_iteration(layers, 0, [](std::size_t) { return 0.0; }),
      std::invalid_argument);
}

TEST(Pipeline, LargeLayerSplitsIntoMultipleBuckets) {
  std::vector<PipelineLayer> layers{{10 << 20, 0.01}};
  const auto comm = [](std::size_t bytes) {
    return static_cast<double>(bytes) * 1e-9;
  };
  PipelineResult r = simulate_iteration(layers, 1 << 20, comm);
  EXPECT_EQ(r.buckets, 10u);
}

}  // namespace
}  // namespace omr::ddl
