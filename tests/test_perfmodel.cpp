#include <gtest/gtest.h>

#include "perfmodel/perfmodel.h"

namespace omr::perfmodel {
namespace {

ModelParams base() {
  ModelParams p;
  p.n_workers = 8;
  p.bandwidth_bps = 10e9;
  p.alpha_s = 10e-6;
  p.tensor_bytes = 100e6;
  p.density = 1.0;
  return p;
}

TEST(PerfModel, RingMatchesClosedForm) {
  ModelParams p = base();
  // 2 * 7 * (1e-5 + 8e8 / 8e10) = 14 * (1e-5 + 0.01) = 0.14014 s
  EXPECT_NEAR(t_ring(p), 0.14014, 1e-5);
}

TEST(PerfModel, OmniReduceDenseIsTensorOverBandwidth) {
  ModelParams p = base();
  EXPECT_NEAR(t_omnireduce(p), 1e-5 + 0.08, 1e-6);
}

TEST(PerfModel, SpeedupVsRingDense) {
  // Dense: SU = 2(N-1)/N = 1.75 at N=8.
  ModelParams p = base();
  EXPECT_NEAR(speedup_vs_ring(p), 1.75, 0.01);
}

TEST(PerfModel, SpeedupGrowsWithSparsity) {
  ModelParams p = base();
  p.density = 0.1;
  // SU = 2(N-1)/(N*D) = 17.5.
  EXPECT_NEAR(speedup_vs_ring(p), 17.5, 0.2);
  p.density = 0.01;
  EXPECT_GT(speedup_vs_ring(p), 100.0);
}

TEST(PerfModel, SpeedupVsAgsparseIndependentOfDensity) {
  // SU = 2(N-1) in the bandwidth regime, for any D.
  for (double d : {1.0, 0.5, 0.05}) {
    ModelParams p = base();
    p.density = d;
    EXPECT_NEAR(speedup_vs_agsparse(p), 14.0, 0.15) << "density " << d;
  }
}

TEST(PerfModel, ColocationHalvesBandwidth) {
  ModelParams p = base();
  EXPECT_NEAR(t_omnireduce_colocated(p) - p.alpha_s,
              2.0 * (t_omnireduce(p) - p.alpha_s), 1e-9);
  // Dense colocated OmniReduce ~ ring: SU -> 2(N-1)/(2N) ~ 0.875.
  EXPECT_NEAR(t_ring(p) / t_omnireduce_colocated(p), 0.875, 0.01);
}

TEST(PerfModel, AgsparseScalesPoorly) {
  ModelParams p2 = base();
  p2.n_workers = 2;
  p2.density = 0.05;
  ModelParams p8 = base();
  p8.n_workers = 8;
  p8.density = 0.05;
  // AGsparse time grows ~(N-1); OmniReduce time is constant.
  EXPECT_NEAR(t_agsparse(p8) / t_agsparse(p2), 7.0, 0.05);
  EXPECT_DOUBLE_EQ(t_omnireduce(p8), t_omnireduce(p2));
}

TEST(PerfModel, VerySparseLatencyRegime) {
  ModelParams p = base();
  p.density = 1e-6;  // latency dominates
  EXPECT_LT(t_omnireduce(p), 2.0 * p.alpha_s);
  EXPECT_GT(t_ring(p), 14.0 * p.alpha_s);
}

}  // namespace
}  // namespace omr::perfmodel
