// Cross-module integration and property tests:
//  * all AllReduce implementations (OmniReduce, ring, recursive doubling,
//    PS, SparCML, AGsparse, sparse-KV) agree on randomized inputs,
//  * workload-profile gradients flow end-to-end through the engine,
//  * analytic §3.4 model brackets the simulation,
//  * randomized configuration fuzzing keeps the engine correct,
//  * failure injection: protocols survive hostile loss patterns.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/zoo.h"
#include "core/algorithm.h"
#include "core/engine.h"
#include "core/sparse_kv.h"
#include "ddl/workloads.h"
#include "innet/p4_aggregator.h"
#include "perfmodel/perfmodel.h"
#include "sim/rng.h"
#include "tensor/coo.h"
#include "tensor/generators.h"

namespace omr {
namespace {

using tensor::DenseTensor;

core::Config engine_cfg() {
  core::Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 64;
  cfg.num_streams = 16;
  cfg.charge_bitmap_cost = false;
  return cfg;
}

core::FabricConfig engine_fabric() {
  core::FabricConfig f;
  f.one_way_latency = sim::microseconds(5);
  return f;
}

device::DeviceModel gdr() {
  device::DeviceModel d;
  d.gdr = true;
  return d;
}

TEST(CrossAlgorithm, AllImplementationsAgree) {
  sim::Rng rng(1);
  const std::size_t n = 16 * 128;
  auto base = tensor::make_multi_worker(4, n, 16, 0.8,
                                        tensor::OverlapMode::kRandom, rng);
  const DenseTensor expect = tensor::reference_sum(base);
  const auto check = [&](const DenseTensor& got, const char* who) {
    EXPECT_LE(tensor::max_abs_diff(got, expect), 1e-3) << who;
  };

  {
    auto ts = base;
    core::run_allreduce(ts, engine_cfg(), core::ClusterSpec::dedicated(2, engine_fabric(), gdr()));
    check(ts[0], "omnireduce");
  }
  // Baselines dispatch through the registry; the default ClusterSpec fabric
  // matches the historical BaselineConfig defaults exactly.
  baselines::register_zoo();
  core::ClusterSpec flat;
  {
    auto ts = base;
    core::run_collective("ring", ts, core::Config{}, flat, /*verify=*/false);
    check(ts[2], "ring");
  }
  {
    auto ts = base;
    core::run_collective("recursive_doubling", ts, core::Config{}, flat,
                         /*verify=*/false);
    check(ts[3], "recursive doubling");
  }
  {
    auto ts = base;
    core::ClusterSpec ps_cluster = flat;
    ps_cluster.n_aggregator_nodes = 3;
    core::run_collective("ps", ts, core::Config{}, ps_cluster,
                         /*verify=*/false);
    check(ts[1], "parameter server");
  }
  {
    auto ts = base;
    core::run_collective("sparcml_ssar", ts, core::Config{}, flat,
                         /*verify=*/false);
    check(ts[0], "sparcml ssar");
  }
  {
    auto ts = base;
    core::run_collective("agsparse", ts, core::Config{}, flat,
                         /*verify=*/false);
    check(ts[0], "agsparse");
  }
  {
    std::vector<tensor::CooTensor> coo;
    for (const auto& t : base) coo.push_back(tensor::dense_to_coo(t));
    core::SparseRunStats kv =
        core::run_sparse_allreduce(coo, engine_fabric(), 32);
    check(tensor::coo_to_dense(kv.result), "sparse kv");
  }
  {
    auto ts = base;
    innet::P4Config p4;
    p4.block_size = 16;
    innet::run_allreduce_innet(ts, p4);
    check(ts[0], "p4 in-network");
  }
}

TEST(WorkloadIntegration, ProfileGradientsThroughEngine) {
  sim::Rng rng(2);
  for (const char* name : {"DeepLight", "LSTM", "NCF", "BERT"}) {
    auto grads = ddl::sample_gradients(ddl::workload(name), 4, 1 << 16, rng);
    core::Config cfg = core::Config::for_transport(core::Transport::kRdma);
    cfg.charge_bitmap_cost = false;
    core::RunStats st = core::run_allreduce(grads, cfg, core::ClusterSpec::dedicated(4, engine_fabric(), gdr()));
    EXPECT_TRUE(st.verified) << name;
  }
}

TEST(ModelValidation, SimulationWithinModelEnvelope) {
  // Full-overlap dense inputs: simulation must land within [1x, 1.35x] of
  // the closed-form optimum (headers + pipeline fill are the only gaps).
  const std::size_t n = 1 << 20;
  sim::Rng rng(3);
  auto ts = tensor::make_multi_worker(8, n, 256, 0.0,
                                      tensor::OverlapMode::kAll, rng);
  core::Config cfg = core::Config::for_transport(core::Transport::kRdma);
  cfg.charge_bitmap_cost = false;
  core::FabricConfig f = engine_fabric();
  core::RunStats st = core::run_allreduce(ts, cfg, core::ClusterSpec::dedicated(8, f, gdr()), /*verify=*/false);
  perfmodel::ModelParams p;
  p.n_workers = 8;
  p.bandwidth_bps = f.worker_bandwidth_bps;
  p.alpha_s = sim::to_seconds(f.one_way_latency);
  p.tensor_bytes = static_cast<double>(n) * 4.0;
  const double model = perfmodel::t_omnireduce(p);
  const double sim_t = sim::to_seconds(st.completion_time);
  EXPECT_GE(sim_t, model * 0.99);
  EXPECT_LE(sim_t, model * 1.35);
}

TEST(ModelValidation, RingSimMatchesClosedForm) {
  const std::size_t n = 1 << 20;
  sim::Rng rng(4);
  baselines::register_zoo();
  core::ClusterSpec flat;
  for (std::size_t workers : {2u, 4u, 8u}) {
    auto ts = tensor::make_multi_worker(workers, n, 256, 0.0,
                                        tensor::OverlapMode::kRandom, rng);
    const auto st = core::run_collective("ring", ts, core::Config{}, flat,
                                         /*verify=*/false);
    perfmodel::ModelParams p;
    p.n_workers = workers;
    p.bandwidth_bps = flat.fabric.worker_bandwidth_bps;
    p.alpha_s = sim::to_seconds(flat.fabric.one_way_latency);
    p.tensor_bytes = static_cast<double>(n) * 4.0;
    EXPECT_NEAR(sim::to_seconds(st.completion_time), perfmodel::t_ring(p),
                perfmodel::t_ring(p) * 0.12)
        << workers;
  }
}

// Randomized configuration fuzzing: any combination of knobs must reduce
// correctly (the engine throws on verification failure).
class ConfigFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConfigFuzz, RandomConfigStaysCorrect) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  core::Config cfg;
  cfg.block_size = 1u << (2 + rng.next_below(5));        // 4..64
  cfg.packet_elements = cfg.block_size << rng.next_below(4);  // w in 1..8
  cfg.num_streams = 1 + rng.next_below(32);
  cfg.charge_bitmap_cost = false;
  cfg.loss_recovery = rng.next_bool(0.5);
  cfg.retransmit_timeout = sim::microseconds(100 + rng.next_below(400));
  cfg.deterministic_reduction = rng.next_bool(0.3);
  const std::size_t workers = 1 + rng.next_below(8);
  const std::size_t n = cfg.block_size * (1 + rng.next_below(200)) +
                        rng.next_below(cfg.block_size);
  const double sparsity = rng.next_double();
  auto ts = tensor::make_multi_worker(workers, n, cfg.block_size, sparsity,
                                      tensor::OverlapMode::kRandom, rng);
  core::FabricConfig f = engine_fabric();
  f.loss_rate = cfg.loss_recovery ? rng.next_double() * 0.05 : 0.0;
  f.seed = rng.next_u64();
  const std::size_t aggs = 1 + rng.next_below(4);
  const core::ClusterSpec cluster =
      rng.next_bool(0.3) ? core::ClusterSpec::colocated(f, gdr())
                         : core::ClusterSpec::dedicated(aggs, f, gdr());
  core::RunStats st = core::run_allreduce(ts, cfg, cluster);
  EXPECT_TRUE(st.verified);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ConfigFuzz, ::testing::Range(0, 40));

// Failure injection: adversarial loss bursts via very high uniform rates
// and tight timeouts.
class LossTorture : public ::testing::TestWithParam<std::tuple<double, int>> {
};

TEST_P(LossTorture, SurvivesAndStaysCorrect) {
  const auto [loss, seed] = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(seed));
  core::Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 32;
  cfg.num_streams = 4;
  cfg.charge_bitmap_cost = false;
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(120);
  auto ts = tensor::make_multi_worker(3, 16 * 64, 16, 0.5,
                                      tensor::OverlapMode::kRandom, rng);
  core::FabricConfig f = engine_fabric();
  f.loss_rate = loss;
  f.seed = static_cast<std::uint64_t>(seed) + 1;
  core::RunStats st = core::run_allreduce(ts, cfg, core::ClusterSpec::dedicated(1, f, gdr()));
  EXPECT_TRUE(st.verified);
  if (loss >= 0.2) {
    EXPECT_GT(st.retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Torture, LossTorture,
    ::testing::Combine(::testing::Values(0.2, 0.35, 0.5),
                       ::testing::Values(1, 2, 3, 4)));

TEST(Accounting, WireBytesConsistent) {
  // TX and RX totals must balance on a lossless fabric.
  sim::Rng rng(11);
  auto ts = tensor::make_multi_worker(4, 16 * 256, 16, 0.7,
                                      tensor::OverlapMode::kRandom, rng);
  sim::Simulator simulator;
  net::Network network(simulator, sim::microseconds(5), 1);
  // Use the engine through its public API; validate via RunStats totals.
  core::Config cfg = engine_cfg();
  core::RunStats st = core::run_allreduce(ts, cfg, core::ClusterSpec::dedicated(2, engine_fabric(), gdr()));
  EXPECT_GT(st.total_messages, 0u);
  EXPECT_EQ(st.dropped_messages, 0u);
}

}  // namespace
}  // namespace omr
