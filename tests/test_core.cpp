#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/collectives.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/sparse_kv.h"
#include "core/stream_layout.h"
#include "sim/rng.h"
#include "tensor/coo.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

using tensor::DenseTensor;
using tensor::OverlapMode;

Config small_config() {
  Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 64;  // w = 4
  cfg.num_streams = 8;
  cfg.charge_bitmap_cost = false;
  return cfg;
}

FabricConfig test_fabric(double loss = 0.0) {
  FabricConfig f;
  f.worker_bandwidth_bps = 10e9;
  f.aggregator_bandwidth_bps = 10e9;
  f.one_way_latency = sim::microseconds(5);
  f.loss_rate = loss;
  f.seed = 7;
  return f;
}

device::DeviceModel gdr_device() {
  device::DeviceModel d;
  d.gdr = true;
  return d;
}

ClusterSpec test_cluster(std::size_t n_aggregators, double loss = 0.0) {
  return ClusterSpec::dedicated(n_aggregators, test_fabric(loss), gdr_device());
}

std::vector<DenseTensor> random_inputs(std::size_t n_workers, std::size_t n,
                                       std::size_t bs, double sparsity,
                                       std::uint64_t seed,
                                       OverlapMode mode = OverlapMode::kRandom) {
  sim::Rng rng(seed);
  return tensor::make_multi_worker(n_workers, n, bs, sparsity, mode, rng);
}

TEST(StreamLayout, CoversAllBlocksExactlyOnce) {
  Config cfg = small_config();
  cfg.num_streams = 5;
  const StreamLayout layout = StreamLayout::build(16 * 33, cfg);
  std::size_t covered = 0;
  std::size_t prev_hi = 0;
  for (const StreamInfo& s : layout.streams) {
    EXPECT_EQ(s.block_lo, prev_hi);
    EXPECT_GT(s.block_hi, s.block_lo);
    EXPECT_EQ(s.columns, std::min<std::size_t>(4, s.blocks()));
    covered += s.blocks();
    prev_hi = s.block_hi;
  }
  EXPECT_EQ(covered, 33u);
}

TEST(StreamLayout, MoreStreamsThanBlocks) {
  Config cfg = small_config();
  cfg.num_streams = 100;
  const StreamLayout layout = StreamLayout::build(16 * 3, cfg);
  std::size_t covered = 0;
  for (const StreamInfo& s : layout.streams) covered += s.blocks();
  EXPECT_EQ(covered, 3u);
  EXPECT_LE(layout.streams.size(), 3u);
}

TEST(Engine, TwoWorkersSparseCorrect) {
  auto inputs = random_inputs(2, 16 * 64, 16, 0.8, 1);
  RunStats st = run_allreduce(inputs, small_config(), test_cluster(2));
  EXPECT_TRUE(st.verified);
  EXPECT_GT(st.completion_time, 0);
}

TEST(Engine, EightWorkersVariousSparsity) {
  for (double s : {0.0, 0.5, 0.9, 0.99}) {
    auto inputs = random_inputs(8, 16 * 128, 16, s, 11);
    RunStats st = run_allreduce(inputs, small_config(), test_cluster(4));
    EXPECT_TRUE(st.verified) << "sparsity " << s;
  }
}

TEST(Engine, SingleWorker) {
  auto inputs = random_inputs(1, 16 * 32, 16, 0.5, 2);
  DenseTensor original = inputs[0];
  RunStats st = run_allreduce(inputs, small_config(), test_cluster(1));
  EXPECT_TRUE(st.verified);
  EXPECT_EQ(tensor::max_abs_diff(inputs[0], original), 0.0);
}

TEST(Engine, AllZeroTensors) {
  std::vector<DenseTensor> inputs(4, DenseTensor(16 * 64));
  RunStats st = run_allreduce(inputs, small_config(), test_cluster(2));
  EXPECT_TRUE(st.verified);
  for (const auto& t : inputs) EXPECT_EQ(t.nnz(), 0u);
  // Only the unconditional first-round blocks travel.
  EXPECT_GT(st.total_messages, 0u);
}

TEST(Engine, OneWorkerDenseOthersZero) {
  sim::Rng rng(3);
  std::vector<DenseTensor> inputs(4, DenseTensor(16 * 64));
  inputs[2] = tensor::make_block_sparse(16 * 64, 16, 0.0, rng);
  RunStats st = run_allreduce(inputs, small_config(), test_cluster(2));
  EXPECT_TRUE(st.verified);
}

TEST(Engine, DisjointAndIdenticalOverlap) {
  for (OverlapMode mode : {OverlapMode::kNone, OverlapMode::kAll}) {
    auto inputs = random_inputs(4, 16 * 256, 16, 0.9, 5, mode);
    RunStats st = run_allreduce(inputs, small_config(), test_cluster(2));
    EXPECT_TRUE(st.verified);
  }
}

TEST(Engine, PartialLastBlock) {
  // Tensor size not a multiple of the block size.
  sim::Rng rng(6);
  std::vector<DenseTensor> inputs;
  for (int w = 0; w < 3; ++w) {
    DenseTensor t(16 * 20 + 7);
    for (std::size_t i = 0; i < t.size(); i += 3) t[i] = rng.next_float(-1, 1);
    inputs.push_back(std::move(t));
  }
  RunStats st = run_allreduce(inputs, small_config(), test_cluster(2));
  EXPECT_TRUE(st.verified);
}

TEST(Engine, TensorSmallerThanOneBlock) {
  std::vector<DenseTensor> inputs;
  for (int w = 0; w < 4; ++w) {
    DenseTensor t(5);
    t[static_cast<std::size_t>(w)] = 1.0f;
    inputs.push_back(std::move(t));
  }
  RunStats st = run_allreduce(inputs, small_config(), test_cluster(1));
  EXPECT_TRUE(st.verified);
}

TEST(Engine, FusionWidthOne) {
  Config cfg = small_config();
  cfg.packet_elements = 16;  // w = 1: the paper's basic Algorithm 1
  auto inputs = random_inputs(4, 16 * 128, 16, 0.7, 8);
  RunStats st = run_allreduce(inputs, cfg, test_cluster(2));
  EXPECT_TRUE(st.verified);
}

TEST(Engine, WideFusion) {
  Config cfg = small_config();
  cfg.packet_elements = 256;  // w = 16
  auto inputs = random_inputs(4, 16 * 512, 16, 0.95, 9);
  RunStats st = run_allreduce(inputs, cfg, test_cluster(2));
  EXPECT_TRUE(st.verified);
}

TEST(Engine, DenseModeSendsEverything) {
  Config cfg = small_config();
  const std::size_t n = 16 * 128;
  auto inputs = random_inputs(2, n, 16, 0.9, 10);
  Config dense_cfg = cfg;
  dense_cfg.dense_mode = true;
  auto inputs2 = inputs;
  RunStats sparse = run_allreduce(inputs, cfg, test_cluster(2));
  RunStats dense = run_allreduce(inputs2, dense_cfg, test_cluster(2));
  EXPECT_TRUE(dense.verified);
  // Dense mode transmits the full tensor per worker.
  EXPECT_EQ(dense.worker_data_bytes[0], n * 4);
  EXPECT_LT(sparse.worker_data_bytes[0], dense.worker_data_bytes[0]);
  EXPECT_LT(sparse.completion_time, dense.completion_time);
}

TEST(Engine, SparsitySkipsBytes) {
  const std::size_t n = 16 * 1024;
  auto inputs = random_inputs(4, n, 16, 0.9, 12);
  std::vector<std::uint64_t> expected;
  for (const auto& t : inputs) {
    tensor::BlockBitmap bm(t.span(), 16);
    expected.push_back(bm.nonzero_count() * 16 * 4);
  }
  RunStats st = run_allreduce(inputs, small_config(), test_cluster(2));
  // The metadata bootstrap carries no payload, so each worker transmits
  // exactly its non-zero blocks.
  for (std::size_t w = 0; w < inputs.size(); ++w) {
    EXPECT_EQ(st.worker_data_bytes[w], expected[w]);
  }
}

TEST(Engine, HigherSparsityIsFaster) {
  sim::Time prev = sim::kTimeInfinity;
  for (double s : {0.0, 0.6, 0.9, 0.99}) {
    auto inputs = random_inputs(8, 16 * 4096, 16, s, 13);
    RunStats st = run_allreduce(inputs, small_config(), test_cluster(8));
    EXPECT_LT(st.completion_time, prev) << "sparsity " << s;
    prev = st.completion_time;
  }
}

TEST(Engine, ColocatedCorrectAndSlowerOnDense) {
  // Bandwidth-bound setup (many streams, low latency) so the NIC sharing
  // of colocation is the binding constraint, not round-trip latency.
  Config cfg = small_config();
  cfg.num_streams = 64;
  FabricConfig fabric = test_fabric();
  fabric.one_way_latency = sim::microseconds(1);
  auto inputs = random_inputs(4, 16 * 8192, 16, 0.0, 14);
  auto inputs2 = inputs;
  RunStats ded = run_allreduce(inputs, cfg,
                               ClusterSpec::dedicated(4, fabric, gdr_device()));
  RunStats col = run_allreduce(inputs2, cfg,
                               ClusterSpec::colocated(fabric, gdr_device()));
  EXPECT_TRUE(col.verified);
  // Colocation halves effective bandwidth on dense data (§3.4).
  EXPECT_GT(col.completion_time, ded.completion_time);
}

TEST(Engine, MoreAggregatorNodesNoCorrectnessChange) {
  for (std::size_t aggs : {1u, 2u, 3u, 8u}) {
    auto inputs = random_inputs(4, 16 * 512, 16, 0.8, 15);
    RunStats st = run_allreduce(inputs, small_config(), test_cluster(aggs));
    EXPECT_TRUE(st.verified) << aggs << " aggregators";
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  auto a = random_inputs(4, 16 * 512, 16, 0.8, 16);
  auto b = a;
  RunStats sa = run_allreduce(a, small_config(), test_cluster(2));
  RunStats sb = run_allreduce(b, small_config(), test_cluster(2));
  EXPECT_EQ(sa.completion_time, sb.completion_time);
  EXPECT_EQ(sa.total_messages, sb.total_messages);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}


TEST(StreamLayout, FusionWidthFollowsPacketCapacity) {
  Config cfg;
  cfg.block_size = 64;
  cfg.packet_elements = 256;
  EXPECT_EQ(cfg.fusion_width(), 4u);
  cfg.packet_elements = 64;
  EXPECT_EQ(cfg.fusion_width(), 1u);
  cfg.packet_elements = 32;  // smaller than a block: still one block/packet
  EXPECT_EQ(cfg.fusion_width(), 1u);
}

TEST(Engine, AnnouncementAccountingPerStream) {
  // Exactly one payload-less bootstrap announcement per stream per worker;
  // with Algorithm 1 no other empty packets exist.
  Config cfg = small_config();
  auto inputs = random_inputs(3, 16 * 64, 16, 0.5, 41);
  const StreamLayout layout = StreamLayout::build(16 * 64, cfg);
  RunStats st = run_allreduce(inputs, cfg, test_cluster(2));
  EXPECT_TRUE(st.verified);
  EXPECT_EQ(st.acks, 0u);
  // total_messages counts worker TX: announcements + data packets.
  EXPECT_GE(st.total_messages, 3u * layout.streams.size());
}

// ---------------------------------------------------------------------------
// Loss recovery (Algorithm 2)
// ---------------------------------------------------------------------------

TEST(LossRecovery, CorrectUnderLoss) {
  for (double loss : {0.005, 0.01, 0.05}) {
    auto inputs = random_inputs(4, 16 * 2048, 16, 0.8, 17);
    Config cfg = small_config();
    cfg.loss_recovery = true;
    cfg.retransmit_timeout = sim::microseconds(200);
    RunStats st = run_allreduce(inputs, cfg, test_cluster(2, loss));
    EXPECT_TRUE(st.verified) << "loss " << loss;
    EXPECT_GT(st.dropped_messages, 0u);
    EXPECT_GT(st.retransmissions, 0u);
  }
}

TEST(LossRecovery, ZeroLossNoRetransmissions) {
  auto inputs = random_inputs(4, 16 * 256, 16, 0.8, 18);
  Config cfg = small_config();
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::milliseconds(10);
  RunStats st = run_allreduce(inputs, cfg, test_cluster(2, 0.0));
  EXPECT_TRUE(st.verified);
  EXPECT_EQ(st.retransmissions, 0u);
}

TEST(LossRecovery, MatchesAlg1Result) {
  auto inputs = random_inputs(4, 16 * 256, 16, 0.7, 19);
  auto inputs2 = inputs;
  Config cfg = small_config();
  RunStats a1 = run_allreduce(inputs, cfg, test_cluster(2));
  cfg.loss_recovery = true;
  RunStats a2 = run_allreduce(inputs2, cfg, test_cluster(2));
  EXPECT_TRUE(a1.verified && a2.verified);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_LE(tensor::max_abs_diff(inputs[i], inputs2[i]), 1e-4);
  }
}

TEST(LossRecovery, SevereLossStillCompletes) {
  auto inputs = random_inputs(2, 16 * 64, 16, 0.5, 20);
  Config cfg = small_config();
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(100);
  RunStats st = run_allreduce(inputs, cfg, test_cluster(1, 0.2));
  EXPECT_TRUE(st.verified);
}

// ---------------------------------------------------------------------------
// Generalized collectives (§7)
// ---------------------------------------------------------------------------

TEST(Collectives, AllGatherConcatenates) {
  sim::Rng rng(21);
  std::vector<DenseTensor> shards;
  std::vector<float> expect;
  for (int w = 0; w < 4; ++w) {
    DenseTensor s(96);
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = rng.next_float(0.5f, 1.5f);
      expect.push_back(s[i]);
    }
    shards.push_back(std::move(s));
  }
  DenseTensor out;
  RunStats st = run_allgather(shards, out, small_config(), test_cluster(2));
  EXPECT_TRUE(st.verified);
  EXPECT_EQ(out, DenseTensor(expect));
}

TEST(Collectives, BroadcastDistributesRootData) {
  sim::Rng rng(22);
  DenseTensor root = tensor::make_block_sparse(16 * 64, 16, 0.5, rng);
  std::vector<DenseTensor> outs;
  RunStats st = run_broadcast(root, 1, 4, outs, small_config(), test_cluster(2));
  EXPECT_TRUE(st.verified);
  ASSERT_EQ(outs.size(), 4u);
  for (const auto& t : outs) EXPECT_EQ(t, root);
}

TEST(Collectives, BroadcastSkipsZeroBlocks) {
  sim::Rng rng(23);
  DenseTensor root = tensor::make_block_sparse(16 * 256, 16, 0.9, rng);
  std::vector<DenseTensor> outs;
  RunStats st = run_broadcast(root, 0, 4, outs, small_config(), test_cluster(2));
  // Only the root transmits payload beyond the first-round blocks.
  EXPECT_GT(st.worker_data_bytes[0], st.worker_data_bytes[1]);
}

// ---------------------------------------------------------------------------
// Sparse key-value extension (Algorithm 3)
// ---------------------------------------------------------------------------

TEST(SparseKv, ReducesCorrectly) {
  sim::Rng rng(24);
  const std::size_t dim = 4096;
  std::vector<DenseTensor> dense;
  std::vector<tensor::CooTensor> inputs;
  for (int w = 0; w < 4; ++w) {
    dense.push_back(tensor::make_block_sparse(dim, 8, 0.9, rng));
    inputs.push_back(tensor::dense_to_coo(dense.back()));
  }
  SparseRunStats st = run_sparse_allreduce(inputs, test_fabric(), 64);
  DenseTensor expect = tensor::reference_sum(dense);
  DenseTensor got = tensor::coo_to_dense(st.result);
  EXPECT_LE(tensor::max_abs_diff(got, expect), 1e-4);
  EXPECT_GT(st.rounds, 0u);
}

TEST(SparseKv, EmptyInputs) {
  std::vector<tensor::CooTensor> inputs(3);
  for (auto& t : inputs) t.dim = 128;
  SparseRunStats st = run_sparse_allreduce(inputs, test_fabric(), 16);
  EXPECT_EQ(st.result.nnz(), 0u);
}

TEST(SparseKv, DisjointKeys) {
  std::vector<tensor::CooTensor> inputs;
  for (int w = 0; w < 3; ++w) {
    tensor::CooTensor t;
    t.dim = 300;
    for (int i = 0; i < 50; ++i) {
      t.keys.push_back(w * 100 + i);
      t.values.push_back(1.0f + static_cast<float>(w));
    }
    inputs.push_back(std::move(t));
  }
  SparseRunStats st = run_sparse_allreduce(inputs, test_fabric(), 16);
  EXPECT_EQ(st.result.nnz(), 150u);
  EXPECT_FLOAT_EQ(st.result.values.front(), 1.0f);
  EXPECT_FLOAT_EQ(st.result.values.back(), 3.0f);
}

// ---------------------------------------------------------------------------
// Property sweep: correctness across the parameter cross-product
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<int /*workers*/, double /*sparsity*/,
                              int /*packet_elements*/, int /*aggs*/>;

class EngineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineSweep, ReducesCorrectly) {
  const auto [workers, sparsity, packet, aggs] = GetParam();
  Config cfg = small_config();
  cfg.packet_elements = static_cast<std::size_t>(packet);
  auto inputs = random_inputs(static_cast<std::size_t>(workers), 16 * 200, 16,
                              sparsity, 31);
  RunStats st =
      run_allreduce(inputs, cfg, test_cluster(static_cast<std::size_t>(aggs)));
  EXPECT_TRUE(st.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Cross, EngineSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(0.0, 0.5, 0.97),
                       ::testing::Values(16, 64, 128),
                       ::testing::Values(1, 3)));

class LossSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LossSweep, RecoversCorrectly) {
  const auto [workers, loss] = GetParam();
  Config cfg = small_config();
  cfg.loss_recovery = true;
  cfg.retransmit_timeout = sim::microseconds(150);
  auto inputs = random_inputs(static_cast<std::size_t>(workers), 16 * 128, 16,
                              0.7, 37);
  RunStats st = run_allreduce(inputs, cfg, test_cluster(2, loss));
  EXPECT_TRUE(st.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Cross, LossSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(0.0001, 0.001, 0.01, 0.1)));

}  // namespace
}  // namespace omr::core
