// Focused tests for the Algorithm-3 key-value extension, including the
// range-sharded (stream-parallel) instantiation.
#include <gtest/gtest.h>

#include "core/sparse_kv.h"
#include "sim/rng.h"
#include "tensor/coo.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

FabricConfig fabric() {
  FabricConfig f;
  f.one_way_latency = sim::microseconds(5);
  return f;
}

std::vector<tensor::CooTensor> random_coo(std::size_t workers,
                                          std::size_t dim, double sparsity,
                                          std::uint64_t seed,
                                          std::vector<tensor::DenseTensor>*
                                              dense_out = nullptr) {
  sim::Rng rng(seed);
  auto dense = tensor::make_multi_worker(workers, dim, 8, sparsity,
                                         tensor::OverlapMode::kRandom, rng);
  std::vector<tensor::CooTensor> coo;
  for (const auto& t : dense) coo.push_back(tensor::dense_to_coo(t));
  if (dense_out != nullptr) *dense_out = std::move(dense);
  return coo;
}

TEST(SparseKvSharded, MatchesReferenceAcrossShardCounts) {
  std::vector<tensor::DenseTensor> dense;
  auto coo = random_coo(4, 1 << 14, 0.95, 1, &dense);
  const tensor::DenseTensor expect = tensor::reference_sum(dense);
  for (std::size_t aggs : {1u, 2u, 7u, 32u}) {
    SparseRunStats st = run_sparse_allreduce(coo, fabric(), 64, 64, aggs);
    EXPECT_LE(tensor::max_abs_diff(tensor::coo_to_dense(st.result), expect),
              1e-4)
        << aggs << " shards";
    // Result keys must be globally sorted and unique.
    for (std::size_t i = 1; i < st.result.nnz(); ++i) {
      EXPECT_LT(st.result.keys[i - 1], st.result.keys[i]);
    }
  }
}

TEST(SparseKvSharded, ShardingReducesCompletionTime) {
  auto coo = random_coo(4, 1 << 16, 0.9, 2);
  const SparseRunStats one = run_sparse_allreduce(coo, fabric(), 256, 64, 1);
  const SparseRunStats many =
      run_sparse_allreduce(coo, fabric(), 256, 64, 32);
  EXPECT_LT(many.completion_time, one.completion_time);
}

TEST(SparseKvSharded, EmptyRangesHandled) {
  // All keys live in the first quarter of the space: 3 of 4 shards idle.
  std::vector<tensor::CooTensor> coo(3);
  for (auto& t : coo) t.dim = 4096;
  coo[0].keys = {1, 2, 3};
  coo[0].values = {1.f, 1.f, 1.f};
  coo[2].keys = {2, 900};
  coo[2].values = {2.f, 5.f};
  SparseRunStats st = run_sparse_allreduce(coo, fabric(), 16, 64, 4);
  ASSERT_EQ(st.result.nnz(), 4u);
  EXPECT_FLOAT_EQ(st.result.values[1], 3.0f);  // key 2 merged
  EXPECT_FLOAT_EQ(st.result.values[3], 5.0f);  // key 900
}

TEST(SparseKv, TinyBlocks) {
  std::vector<tensor::DenseTensor> dense;
  auto coo = random_coo(3, 2048, 0.9, 3, &dense);
  const tensor::DenseTensor expect = tensor::reference_sum(dense);
  // One pair per packet: maximal round count, still correct.
  SparseRunStats st = run_sparse_allreduce(coo, fabric(), 1, 64, 1);
  EXPECT_LE(tensor::max_abs_diff(tensor::coo_to_dense(st.result), expect),
            1e-4);
  EXPECT_GE(st.rounds, expect.nnz() / 3);
}

TEST(SparseKv, SingleWorkerEchoesInput) {
  std::vector<tensor::CooTensor> coo(1);
  coo[0].dim = 100;
  coo[0].keys = {5, 50, 99};
  coo[0].values = {1.f, 2.f, 3.f};
  SparseRunStats st = run_sparse_allreduce(coo, fabric(), 2);
  EXPECT_EQ(st.result.keys, coo[0].keys);
  EXPECT_EQ(st.result.values, coo[0].values);
}

TEST(SparseKv, PairBytesMatchInputVolume) {
  std::vector<tensor::DenseTensor> dense;
  auto coo = random_coo(4, 1 << 12, 0.9, 4, &dense);
  std::size_t pairs = 0;
  for (const auto& t : coo) pairs += t.nnz();
  SparseRunStats st = run_sparse_allreduce(coo, fabric(), 64);
  EXPECT_EQ(st.pair_bytes_sent, pairs * 8);
}

TEST(SparseKv, RejectsZeroAggregators) {
  std::vector<tensor::CooTensor> coo(1);
  coo[0].dim = 10;
  EXPECT_THROW(run_sparse_allreduce(coo, fabric(), 16, 64, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace omr::core
