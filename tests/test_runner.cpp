// Tests for the parallel sweep runner: pool lifecycle, ordered commits
// under adversarial scheduling, exception propagation, and the headline
// guarantee — a parallel sweep's RunReport array is bit-identical to the
// serial one for a Fig. 4-shaped grid.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "sim/rng.h"
#include "telemetry/report.h"
#include "tensor/generators.h"

namespace omr::runner {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_all();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitAllIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_all();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_all: shutdown itself must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitAllWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_all();
  pool.wait_all();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// parallel_for_each ordering
// ---------------------------------------------------------------------------

TEST(ParallelForEach, CommitsInSubmissionOrderUnderRandomizedScheduling) {
  // Tasks finish in a scrambled order (each sleeps a pseudo-random time);
  // commits must still arrive 0, 1, 2, ... on the calling thread.
  const std::size_t n = 64;
  sim::Rng rng(11);
  std::vector<int> delays_us;
  for (std::size_t i = 0; i < n; ++i) {
    delays_us.push_back(static_cast<int>(rng.next_below(500)));
  }
  std::vector<std::size_t> commit_order;
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for_each<std::size_t>(
      n,
      [&delays_us](std::size_t i) {
        std::this_thread::sleep_for(std::chrono::microseconds(delays_us[i]));
        return i * i;
      },
      [&](std::size_t i, std::size_t&& v) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(v, i * i);
        commit_order.push_back(i);
      },
      /*jobs=*/4);
  ASSERT_EQ(commit_order.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(commit_order[i], i);
}

TEST(ParallelForEach, SerialPathMatchesParallelResults) {
  const std::size_t n = 40;
  auto task = [](std::size_t i) { return static_cast<double>(i) * 1.5; };
  std::vector<double> serial, parallel;
  parallel_for_each<double>(
      n, task, [&](std::size_t, double&& v) { serial.push_back(v); },
      /*jobs=*/1);
  parallel_for_each<double>(
      n, task, [&](std::size_t, double&& v) { parallel.push_back(v); },
      /*jobs=*/8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForEach, ZeroTasksIsANoOp) {
  int commits = 0;
  parallel_for_each<int>(
      0, [](std::size_t) { return 0; },
      [&](std::size_t, int&&) { ++commits; }, /*jobs=*/4);
  EXPECT_EQ(commits, 0);
}

// ---------------------------------------------------------------------------
// Exception propagation
// ---------------------------------------------------------------------------

TEST(ParallelForEach, PropagatesTaskExceptionToCaller) {
  EXPECT_THROW(
      parallel_for_each<int>(
          16,
          [](std::size_t i) {
            if (i == 5) throw std::runtime_error("task 5 failed");
            return static_cast<int>(i);
          },
          [](std::size_t, int&&) {}, /*jobs=*/4),
      std::runtime_error);
}

TEST(ParallelForEach, LowestIndexExceptionWinsAndCommitsStopBeforeIt) {
  // Indices 3 and 9 both throw; the rethrown error must be index 3's (the
  // serial program would have hit it first) and no commit at or past 3
  // may have run.
  std::vector<std::size_t> committed;
  try {
    parallel_for_each<int>(
        16,
        [](std::size_t i) {
          if (i == 3) throw std::runtime_error("boom-3");
          if (i == 9) throw std::runtime_error("boom-9");
          return static_cast<int>(i);
        },
        [&](std::size_t i, int&&) { committed.push_back(i); },
        /*jobs=*/8);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom-3");
  }
  EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParallelForEach, SerialPathPropagatesExceptions) {
  EXPECT_THROW(parallel_for_each<int>(
                   4,
                   [](std::size_t i) -> int {
                     if (i == 2) throw std::logic_error("serial");
                     return 0;
                   },
                   [](std::size_t, int&&) {}, /*jobs=*/1),
               std::logic_error);
}

TEST(SweepRunner, IsReusableAfterAnException) {
  SweepRunner runner(4);
  EXPECT_THROW(runner.for_each<int>(
                   8,
                   [](std::size_t i) -> int {
                     if (i == 1) throw std::runtime_error("first sweep");
                     return 0;
                   },
                   [](std::size_t, int&&) {}),
               std::runtime_error);
  int commits = 0;
  runner.for_each<int>(
      8, [](std::size_t i) { return static_cast<int>(i); },
      [&](std::size_t i, int&& v) {
        EXPECT_EQ(v, static_cast<int>(i));
        ++commits;
      });
  EXPECT_EQ(commits, 8);
}

// ---------------------------------------------------------------------------
// default_jobs
// ---------------------------------------------------------------------------

TEST(DefaultJobs, IsAtLeastOne) { EXPECT_GE(default_jobs(), 1u); }

// ---------------------------------------------------------------------------
// Bit-identical reports: a Fig. 4-shaped grid, serial vs parallel
// ---------------------------------------------------------------------------

telemetry::RunReport grid_cell(std::size_t workers, double sparsity,
                               std::uint64_t seed) {
  sim::Rng rng(seed);
  auto tensors = tensor::make_multi_worker(workers, 16 * 256, 16, sparsity,
                                           tensor::OverlapMode::kRandom, rng);
  core::Config cfg;
  cfg.block_size = 16;
  cfg.packet_elements = 64;
  cfg.num_streams = 8;
  core::ClusterSpec cluster = core::ClusterSpec::dedicated(2);
  cluster.fabric.seed = seed;
  cluster.telemetry.enabled = true;
  cluster.telemetry.trace_events = false;
  char label[48];
  std::snprintf(label, sizeof(label), "grid/w%zu/s%.2f", workers, sparsity);
  return core::run_allreduce_report(tensors, cfg, cluster, /*verify=*/true,
                                    label);
}

TEST(ParallelForEach, Fig04ShapedGridIsBitIdenticalToSerial) {
  struct Cell {
    std::size_t workers;
    double sparsity;
    std::uint64_t seed;
  };
  std::vector<Cell> grid;
  for (std::size_t workers : {2u, 4u}) {
    std::uint64_t seed = 2;
    for (double s : {0.0, 0.6, 0.9, 0.99}) {
      grid.push_back({workers, s, seed++});
    }
  }

  auto run_grid = [&grid](std::size_t jobs) {
    std::vector<telemetry::RunReport> reports;
    parallel_for_each<telemetry::RunReport>(
        grid.size(),
        [&grid](std::size_t i) {
          const Cell& c = grid[i];
          return grid_cell(c.workers, c.sparsity, c.seed);
        },
        [&reports](std::size_t, telemetry::RunReport&& r) {
          reports.push_back(std::move(r));
        },
        jobs);
    std::ostringstream json;
    telemetry::write_report_array(reports, json);
    return json.str();
  };

  const std::string serial = run_grid(1);
  const std::string parallel = run_grid(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace omr::runner
