#include <gtest/gtest.h>

#include "core/hierarchical.h"
#include "sim/rng.h"
#include "tensor/generators.h"

namespace omr::core {
namespace {

using tensor::DenseTensor;

std::vector<std::vector<DenseTensor>> cluster(std::size_t servers,
                                              std::size_t gpus, std::size_t n,
                                              double sparsity,
                                              std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::vector<DenseTensor>> out(servers);
  for (auto& s : out) {
    s = tensor::make_multi_worker(gpus, n, 16, sparsity,
                                  tensor::OverlapMode::kRandom, rng);
  }
  return out;
}

Config cfg() {
  Config c;
  c.block_size = 16;
  c.packet_elements = 64;
  c.num_streams = 8;
  c.charge_bitmap_cost = false;
  return c;
}

FabricConfig fabric() {
  FabricConfig f;
  f.worker_bandwidth_bps = 100e9;
  f.aggregator_bandwidth_bps = 100e9;
  f.one_way_latency = sim::microseconds(5);
  return f;
}

TEST(Hierarchical, ReducesAcrossServersAndGpus) {
  auto grads = cluster(3, 4, 16 * 64, 0.5, 1);
  device::DeviceModel dev;
  dev.gdr = true;
  HierarchicalStats st = run_hierarchical_allreduce(
      grads, cfg(), ClusterSpec::dedicated(3, fabric(), dev));
  EXPECT_TRUE(st.verified);
  EXPECT_GT(st.total, st.inter.completion_time);
  EXPECT_GT(st.intra_reduce, 0);
}

TEST(Hierarchical, SingleGpuServersSkipIntraPhase) {
  auto grads = cluster(4, 1, 16 * 32, 0.5, 2);
  device::DeviceModel dev;
  dev.gdr = true;
  HierarchicalStats st = run_hierarchical_allreduce(
      grads, cfg(), ClusterSpec::dedicated(4, fabric(), dev));
  EXPECT_TRUE(st.verified);
  EXPECT_EQ(st.intra_reduce, 0);
  EXPECT_EQ(st.total, st.inter.completion_time);
}

TEST(Hierarchical, UnionSparsityDensifiesInterLayer) {
  // 8 GPUs per server with independent 90%-sparse gradients: the server
  // sum is much denser than any single GPU's gradient.
  auto grads = cluster(2, 8, 16 * 256, 0.9, 3);
  device::DeviceModel dev;
  dev.gdr = true;
  auto copy = grads;
  HierarchicalStats st = run_hierarchical_allreduce(
      copy, cfg(), ClusterSpec::dedicated(2, fabric(), dev));
  EXPECT_TRUE(st.verified);
  // Mean per-server transmitted volume exceeds a single GPU's non-zero
  // volume (union effect).
  tensor::BlockBitmap single(grads[0][0].span(), 16);
  const double single_frac =
      static_cast<double>(single.nonzero_count()) / single.size();
  const double sent_frac =
      st.inter.mean_worker_data_bytes() / (16.0 * 256 * 4);
  EXPECT_GT(sent_frac, single_frac);
}

TEST(Hierarchical, RackAwareSurvivesSpineBurstLossWithUnevenRacks) {
  // Uneven racks (3 servers vs 2) under Gilbert-Elliott burst loss on the
  // spine: the rack layer must still reduce correctly — recovery rides the
  // retransmission path — and both rack phases must do real work.
  auto grads = cluster(5, 2, 16 * 64, 0.6, 7);
  device::DeviceModel dev;
  dev.gdr = true;
  ClusterSpec spec = ClusterSpec::dedicated(5, fabric(), dev);
  spec.topology = TopologySpec::two_tier_racks(2);
  spec.topology.worker_racks = {0, 0, 0, 1, 1};
  spec.topology.spine_burst_loss.p_good_to_bad = 0.05;
  spec.topology.spine_burst_loss.p_bad_to_good = 0.3;
  Config c = cfg();
  c.retransmit_timeout = sim::microseconds(200);
  HierarchicalConfig hier;
  hier.rack_aware = true;
  HierarchicalStats st = run_hierarchical_allreduce(grads, c, spec, hier);
  EXPECT_TRUE(st.verified);
  EXPECT_GT(st.rack_reduce, 0);
  EXPECT_GT(st.rack_broadcast, 0);
  EXPECT_GT(st.inter.dropped_messages, 0u);
  EXPECT_GT(st.inter.retransmissions, 0u);
}

TEST(Hierarchical, RackAwareBurstLossRunsAreBitIdentical) {
  // The burst-loss chain and retransmission timers are seeded: the same
  // uneven-rack schedule must replay exactly.
  device::DeviceModel dev;
  dev.gdr = true;
  ClusterSpec spec = ClusterSpec::dedicated(5, fabric(), dev);
  spec.topology = TopologySpec::two_tier_racks(2);
  spec.topology.worker_racks = {0, 0, 0, 1, 1};
  spec.topology.spine_burst_loss.p_good_to_bad = 0.05;
  spec.topology.spine_burst_loss.p_bad_to_good = 0.3;
  Config c = cfg();
  c.retransmit_timeout = sim::microseconds(200);
  HierarchicalConfig hier;
  hier.rack_aware = true;
  auto a_grads = cluster(5, 2, 16 * 64, 0.6, 7);
  auto b_grads = cluster(5, 2, 16 * 64, 0.6, 7);
  const HierarchicalStats a = run_hierarchical_allreduce(a_grads, c, spec, hier);
  const HierarchicalStats b = run_hierarchical_allreduce(b_grads, c, spec, hier);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.rack_reduce, b.rack_reduce);
  EXPECT_EQ(a.rack_broadcast, b.rack_broadcast);
  EXPECT_EQ(a.inter.completion_time, b.inter.completion_time);
  EXPECT_EQ(a.inter.total_messages, b.inter.total_messages);
  EXPECT_EQ(a.inter.retransmissions, b.inter.retransmissions);
  EXPECT_EQ(a.inter.dropped_messages, b.inter.dropped_messages);
}

TEST(Hierarchical, MismatchedSizesThrow) {
  std::vector<std::vector<DenseTensor>> grads(2);
  grads[0].push_back(DenseTensor(64));
  grads[1].push_back(DenseTensor(32));
  device::DeviceModel dev;
  EXPECT_THROW(run_hierarchical_allreduce(grads, cfg(), ClusterSpec::dedicated(2, fabric(), dev)),
               std::invalid_argument);
}

}  // namespace
}  // namespace omr::core
