# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build2/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build2/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_recommender_training "/root/repo/build2/examples/recommender_training")
set_tests_properties(example_recommender_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gradient_compression "/root/repo/build2/examples/gradient_compression")
set_tests_properties(example_gradient_compression PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sparse_collectives "/root/repo/build2/examples/sparse_collectives")
set_tests_properties(example_sparse_collectives PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_session_training "/root/repo/build2/examples/session_training")
set_tests_properties(example_session_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_omr_cli "/root/repo/build2/examples/omr_cli" "--workers" "4" "--mb" "4" "--sparsity" "0.9" "--bandwidth" "100" "--transport" "rdma" "--gdr")
set_tests_properties(example_omr_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_omr_cli_telemetry "/root/repo/build2/examples/omr_cli" "--workers" "4" "--mb" "2" "--sparsity" "0.9" "--loss" "0.002" "--transport" "dpdk" "--report" "/root/repo/build2/examples/omr_cli_report.json" "--trace" "/root/repo/build2/examples/omr_cli_trace.json")
set_tests_properties(example_omr_cli_telemetry PROPERTIES  FIXTURES_SETUP "omr_cli_telemetry_files" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(telemetry_schema_validate "/root/.pyenv/shims/python3" "/root/repo/tools/validate_telemetry.py" "/root/repo/build2/examples/omr_cli_report.json" "/root/repo/build2/examples/omr_cli_trace.json")
set_tests_properties(telemetry_schema_validate PROPERTIES  FIXTURES_REQUIRED "omr_cli_telemetry_files" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
