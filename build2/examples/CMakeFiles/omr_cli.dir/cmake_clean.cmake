file(REMOVE_RECURSE
  "CMakeFiles/omr_cli.dir/omr_cli.cpp.o"
  "CMakeFiles/omr_cli.dir/omr_cli.cpp.o.d"
  "omr_cli"
  "omr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
