# Empty compiler generated dependencies file for omr_cli.
# This may be replaced when dependencies are built.
