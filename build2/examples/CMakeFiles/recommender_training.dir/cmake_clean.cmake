file(REMOVE_RECURSE
  "CMakeFiles/recommender_training.dir/recommender_training.cpp.o"
  "CMakeFiles/recommender_training.dir/recommender_training.cpp.o.d"
  "recommender_training"
  "recommender_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
