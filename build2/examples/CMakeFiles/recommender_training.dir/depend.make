# Empty dependencies file for recommender_training.
# This may be replaced when dependencies are built.
