# Empty dependencies file for sparse_collectives.
# This may be replaced when dependencies are built.
