file(REMOVE_RECURSE
  "CMakeFiles/sparse_collectives.dir/sparse_collectives.cpp.o"
  "CMakeFiles/sparse_collectives.dir/sparse_collectives.cpp.o.d"
  "sparse_collectives"
  "sparse_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
