file(REMOVE_RECURSE
  "CMakeFiles/session_training.dir/session_training.cpp.o"
  "CMakeFiles/session_training.dir/session_training.cpp.o.d"
  "session_training"
  "session_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
