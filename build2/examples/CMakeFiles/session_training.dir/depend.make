# Empty dependencies file for session_training.
# This may be replaced when dependencies are built.
