file(REMOVE_RECURSE
  "CMakeFiles/gradient_compression.dir/gradient_compression.cpp.o"
  "CMakeFiles/gradient_compression.dir/gradient_compression.cpp.o.d"
  "gradient_compression"
  "gradient_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradient_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
