# Empty compiler generated dependencies file for gradient_compression.
# This may be replaced when dependencies are built.
