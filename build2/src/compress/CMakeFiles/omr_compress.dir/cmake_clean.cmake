file(REMOVE_RECURSE
  "CMakeFiles/omr_compress.dir/compressors.cpp.o"
  "CMakeFiles/omr_compress.dir/compressors.cpp.o.d"
  "CMakeFiles/omr_compress.dir/quantizers.cpp.o"
  "CMakeFiles/omr_compress.dir/quantizers.cpp.o.d"
  "libomr_compress.a"
  "libomr_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
