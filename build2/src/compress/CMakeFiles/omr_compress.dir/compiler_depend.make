# Empty compiler generated dependencies file for omr_compress.
# This may be replaced when dependencies are built.
