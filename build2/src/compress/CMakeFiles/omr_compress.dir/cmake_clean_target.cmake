file(REMOVE_RECURSE
  "libomr_compress.a"
)
