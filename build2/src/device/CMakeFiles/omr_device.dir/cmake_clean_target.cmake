file(REMOVE_RECURSE
  "libomr_device.a"
)
