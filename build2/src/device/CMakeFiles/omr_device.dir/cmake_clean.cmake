file(REMOVE_RECURSE
  "CMakeFiles/omr_device.dir/device_model.cpp.o"
  "CMakeFiles/omr_device.dir/device_model.cpp.o.d"
  "libomr_device.a"
  "libomr_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
