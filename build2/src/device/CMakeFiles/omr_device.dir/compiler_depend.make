# Empty compiler generated dependencies file for omr_device.
# This may be replaced when dependencies are built.
