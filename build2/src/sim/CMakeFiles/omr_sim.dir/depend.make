# Empty dependencies file for omr_sim.
# This may be replaced when dependencies are built.
