file(REMOVE_RECURSE
  "libomr_sim.a"
)
