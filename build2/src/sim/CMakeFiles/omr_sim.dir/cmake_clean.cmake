file(REMOVE_RECURSE
  "CMakeFiles/omr_sim.dir/event_queue.cpp.o"
  "CMakeFiles/omr_sim.dir/event_queue.cpp.o.d"
  "libomr_sim.a"
  "libomr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
