file(REMOVE_RECURSE
  "libomr_ddl.a"
)
