file(REMOVE_RECURSE
  "CMakeFiles/omr_ddl.dir/end_to_end.cpp.o"
  "CMakeFiles/omr_ddl.dir/end_to_end.cpp.o.d"
  "CMakeFiles/omr_ddl.dir/metrics.cpp.o"
  "CMakeFiles/omr_ddl.dir/metrics.cpp.o.d"
  "CMakeFiles/omr_ddl.dir/pipeline.cpp.o"
  "CMakeFiles/omr_ddl.dir/pipeline.cpp.o.d"
  "CMakeFiles/omr_ddl.dir/trainer.cpp.o"
  "CMakeFiles/omr_ddl.dir/trainer.cpp.o.d"
  "CMakeFiles/omr_ddl.dir/workloads.cpp.o"
  "CMakeFiles/omr_ddl.dir/workloads.cpp.o.d"
  "libomr_ddl.a"
  "libomr_ddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
