# Empty dependencies file for omr_ddl.
# This may be replaced when dependencies are built.
