file(REMOVE_RECURSE
  "CMakeFiles/omr_core.dir/aggregator.cpp.o"
  "CMakeFiles/omr_core.dir/aggregator.cpp.o.d"
  "CMakeFiles/omr_core.dir/bucketing.cpp.o"
  "CMakeFiles/omr_core.dir/bucketing.cpp.o.d"
  "CMakeFiles/omr_core.dir/collectives.cpp.o"
  "CMakeFiles/omr_core.dir/collectives.cpp.o.d"
  "CMakeFiles/omr_core.dir/engine.cpp.o"
  "CMakeFiles/omr_core.dir/engine.cpp.o.d"
  "CMakeFiles/omr_core.dir/hierarchical.cpp.o"
  "CMakeFiles/omr_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/omr_core.dir/session.cpp.o"
  "CMakeFiles/omr_core.dir/session.cpp.o.d"
  "CMakeFiles/omr_core.dir/sparse_kv.cpp.o"
  "CMakeFiles/omr_core.dir/sparse_kv.cpp.o.d"
  "CMakeFiles/omr_core.dir/worker.cpp.o"
  "CMakeFiles/omr_core.dir/worker.cpp.o.d"
  "libomr_core.a"
  "libomr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
