file(REMOVE_RECURSE
  "libomr_core.a"
)
