# Empty compiler generated dependencies file for omr_core.
# This may be replaced when dependencies are built.
