
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregator.cpp" "src/core/CMakeFiles/omr_core.dir/aggregator.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/aggregator.cpp.o.d"
  "/root/repo/src/core/bucketing.cpp" "src/core/CMakeFiles/omr_core.dir/bucketing.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/bucketing.cpp.o.d"
  "/root/repo/src/core/collectives.cpp" "src/core/CMakeFiles/omr_core.dir/collectives.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/collectives.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/omr_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/core/CMakeFiles/omr_core.dir/hierarchical.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/hierarchical.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/omr_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/session.cpp.o.d"
  "/root/repo/src/core/sparse_kv.cpp" "src/core/CMakeFiles/omr_core.dir/sparse_kv.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/sparse_kv.cpp.o.d"
  "/root/repo/src/core/worker.cpp" "src/core/CMakeFiles/omr_core.dir/worker.cpp.o" "gcc" "src/core/CMakeFiles/omr_core.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/omr_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/net/CMakeFiles/omr_net.dir/DependInfo.cmake"
  "/root/repo/build2/src/telemetry/CMakeFiles/omr_telemetry.dir/DependInfo.cmake"
  "/root/repo/build2/src/tensor/CMakeFiles/omr_tensor.dir/DependInfo.cmake"
  "/root/repo/build2/src/device/CMakeFiles/omr_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
