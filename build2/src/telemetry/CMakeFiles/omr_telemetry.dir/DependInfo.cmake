
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/chrome_trace.cpp" "src/telemetry/CMakeFiles/omr_telemetry.dir/chrome_trace.cpp.o" "gcc" "src/telemetry/CMakeFiles/omr_telemetry.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/telemetry/report.cpp" "src/telemetry/CMakeFiles/omr_telemetry.dir/report.cpp.o" "gcc" "src/telemetry/CMakeFiles/omr_telemetry.dir/report.cpp.o.d"
  "/root/repo/src/telemetry/telemetry.cpp" "src/telemetry/CMakeFiles/omr_telemetry.dir/telemetry.cpp.o" "gcc" "src/telemetry/CMakeFiles/omr_telemetry.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/omr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
