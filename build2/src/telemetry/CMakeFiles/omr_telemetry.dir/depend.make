# Empty dependencies file for omr_telemetry.
# This may be replaced when dependencies are built.
