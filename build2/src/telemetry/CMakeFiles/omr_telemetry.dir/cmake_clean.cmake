file(REMOVE_RECURSE
  "CMakeFiles/omr_telemetry.dir/chrome_trace.cpp.o"
  "CMakeFiles/omr_telemetry.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/omr_telemetry.dir/report.cpp.o"
  "CMakeFiles/omr_telemetry.dir/report.cpp.o.d"
  "CMakeFiles/omr_telemetry.dir/telemetry.cpp.o"
  "CMakeFiles/omr_telemetry.dir/telemetry.cpp.o.d"
  "libomr_telemetry.a"
  "libomr_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
