file(REMOVE_RECURSE
  "libomr_telemetry.a"
)
