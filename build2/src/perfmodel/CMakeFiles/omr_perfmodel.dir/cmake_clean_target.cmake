file(REMOVE_RECURSE
  "libomr_perfmodel.a"
)
