# Empty dependencies file for omr_perfmodel.
# This may be replaced when dependencies are built.
