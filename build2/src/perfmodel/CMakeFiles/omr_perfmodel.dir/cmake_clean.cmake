file(REMOVE_RECURSE
  "CMakeFiles/omr_perfmodel.dir/perfmodel.cpp.o"
  "CMakeFiles/omr_perfmodel.dir/perfmodel.cpp.o.d"
  "libomr_perfmodel.a"
  "libomr_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
