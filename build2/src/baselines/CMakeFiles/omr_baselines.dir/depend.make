# Empty dependencies file for omr_baselines.
# This may be replaced when dependencies are built.
