file(REMOVE_RECURSE
  "libomr_baselines.a"
)
