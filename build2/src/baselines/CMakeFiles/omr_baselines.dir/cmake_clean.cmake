file(REMOVE_RECURSE
  "CMakeFiles/omr_baselines.dir/agsparse.cpp.o"
  "CMakeFiles/omr_baselines.dir/agsparse.cpp.o.d"
  "CMakeFiles/omr_baselines.dir/parameter_server.cpp.o"
  "CMakeFiles/omr_baselines.dir/parameter_server.cpp.o.d"
  "CMakeFiles/omr_baselines.dir/ring.cpp.o"
  "CMakeFiles/omr_baselines.dir/ring.cpp.o.d"
  "CMakeFiles/omr_baselines.dir/sparcml.cpp.o"
  "CMakeFiles/omr_baselines.dir/sparcml.cpp.o.d"
  "libomr_baselines.a"
  "libomr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
