# Empty compiler generated dependencies file for omr_net.
# This may be replaced when dependencies are built.
