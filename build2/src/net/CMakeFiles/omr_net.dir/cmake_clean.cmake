file(REMOVE_RECURSE
  "CMakeFiles/omr_net.dir/network.cpp.o"
  "CMakeFiles/omr_net.dir/network.cpp.o.d"
  "libomr_net.a"
  "libomr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
