file(REMOVE_RECURSE
  "libomr_net.a"
)
