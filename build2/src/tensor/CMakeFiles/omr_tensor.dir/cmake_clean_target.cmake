file(REMOVE_RECURSE
  "libomr_tensor.a"
)
