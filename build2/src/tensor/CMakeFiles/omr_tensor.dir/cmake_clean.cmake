file(REMOVE_RECURSE
  "CMakeFiles/omr_tensor.dir/blocks.cpp.o"
  "CMakeFiles/omr_tensor.dir/blocks.cpp.o.d"
  "CMakeFiles/omr_tensor.dir/coo.cpp.o"
  "CMakeFiles/omr_tensor.dir/coo.cpp.o.d"
  "CMakeFiles/omr_tensor.dir/dense.cpp.o"
  "CMakeFiles/omr_tensor.dir/dense.cpp.o.d"
  "CMakeFiles/omr_tensor.dir/generators.cpp.o"
  "CMakeFiles/omr_tensor.dir/generators.cpp.o.d"
  "libomr_tensor.a"
  "libomr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
