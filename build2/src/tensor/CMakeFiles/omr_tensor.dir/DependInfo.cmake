
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/blocks.cpp" "src/tensor/CMakeFiles/omr_tensor.dir/blocks.cpp.o" "gcc" "src/tensor/CMakeFiles/omr_tensor.dir/blocks.cpp.o.d"
  "/root/repo/src/tensor/coo.cpp" "src/tensor/CMakeFiles/omr_tensor.dir/coo.cpp.o" "gcc" "src/tensor/CMakeFiles/omr_tensor.dir/coo.cpp.o.d"
  "/root/repo/src/tensor/dense.cpp" "src/tensor/CMakeFiles/omr_tensor.dir/dense.cpp.o" "gcc" "src/tensor/CMakeFiles/omr_tensor.dir/dense.cpp.o.d"
  "/root/repo/src/tensor/generators.cpp" "src/tensor/CMakeFiles/omr_tensor.dir/generators.cpp.o" "gcc" "src/tensor/CMakeFiles/omr_tensor.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sim/CMakeFiles/omr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
