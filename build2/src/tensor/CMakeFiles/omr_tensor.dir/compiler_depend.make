# Empty compiler generated dependencies file for omr_tensor.
# This may be replaced when dependencies are built.
