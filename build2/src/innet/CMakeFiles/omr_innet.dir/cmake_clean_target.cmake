file(REMOVE_RECURSE
  "libomr_innet.a"
)
