# Empty compiler generated dependencies file for omr_innet.
# This may be replaced when dependencies are built.
