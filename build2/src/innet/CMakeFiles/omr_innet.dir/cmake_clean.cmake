file(REMOVE_RECURSE
  "CMakeFiles/omr_innet.dir/p4_aggregator.cpp.o"
  "CMakeFiles/omr_innet.dir/p4_aggregator.cpp.o.d"
  "libomr_innet.a"
  "libomr_innet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omr_innet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
