# Empty compiler generated dependencies file for bench_fig08_format_conversion.
# This may be replaced when dependencies are built.
