file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_format_conversion.dir/bench_fig08_format_conversion.cpp.o"
  "CMakeFiles/bench_fig08_format_conversion.dir/bench_fig08_format_conversion.cpp.o.d"
  "bench_fig08_format_conversion"
  "bench_fig08_format_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_format_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
