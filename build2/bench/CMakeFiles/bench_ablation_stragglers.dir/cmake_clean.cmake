file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stragglers.dir/bench_ablation_stragglers.cpp.o"
  "CMakeFiles/bench_ablation_stragglers.dir/bench_ablation_stragglers.cpp.o.d"
  "bench_ablation_stragglers"
  "bench_ablation_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
