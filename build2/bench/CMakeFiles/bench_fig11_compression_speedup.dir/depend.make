# Empty dependencies file for bench_fig11_compression_speedup.
# This may be replaced when dependencies are built.
