# Empty compiler generated dependencies file for bench_fig14_multigpu_train.
# This may be replaced when dependencies are built.
