file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_multigpu_train.dir/bench_fig14_multigpu_train.cpp.o"
  "CMakeFiles/bench_fig14_multigpu_train.dir/bench_fig14_multigpu_train.cpp.o.d"
  "bench_fig14_multigpu_train"
  "bench_fig14_multigpu_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_multigpu_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
