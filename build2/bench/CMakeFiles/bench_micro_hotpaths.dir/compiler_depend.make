# Empty compiler generated dependencies file for bench_micro_hotpaths.
# This may be replaced when dependencies are built.
