file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hotpaths.dir/bench_micro_hotpaths.cpp.o"
  "CMakeFiles/bench_micro_hotpaths.dir/bench_micro_hotpaths.cpp.o.d"
  "bench_micro_hotpaths"
  "bench_micro_hotpaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hotpaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
