# Empty dependencies file for bench_fig12_loss_curves.
# This may be replaced when dependencies are built.
