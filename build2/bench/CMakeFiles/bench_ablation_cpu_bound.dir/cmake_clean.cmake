file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cpu_bound.dir/bench_ablation_cpu_bound.cpp.o"
  "CMakeFiles/bench_ablation_cpu_bound.dir/bench_ablation_cpu_bound.cpp.o.d"
  "bench_ablation_cpu_bound"
  "bench_ablation_cpu_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cpu_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
