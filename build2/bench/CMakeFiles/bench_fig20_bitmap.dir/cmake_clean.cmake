file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_bitmap.dir/bench_fig20_bitmap.cpp.o"
  "CMakeFiles/bench_fig20_bitmap.dir/bench_fig20_bitmap.cpp.o.d"
  "bench_fig20_bitmap"
  "bench_fig20_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
