# Empty compiler generated dependencies file for bench_fig16_block_sparsity.
# This may be replaced when dependencies are built.
