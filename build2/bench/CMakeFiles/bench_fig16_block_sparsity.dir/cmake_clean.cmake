file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_block_sparsity.dir/bench_fig16_block_sparsity.cpp.o"
  "CMakeFiles/bench_fig16_block_sparsity.dir/bench_fig16_block_sparsity.cpp.o.d"
  "bench_fig16_block_sparsity"
  "bench_fig16_block_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_block_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
