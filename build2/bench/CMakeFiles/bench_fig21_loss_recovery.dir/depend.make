# Empty dependencies file for bench_fig21_loss_recovery.
# This may be replaced when dependencies are built.
