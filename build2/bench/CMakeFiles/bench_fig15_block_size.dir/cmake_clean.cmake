file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_block_size.dir/bench_fig15_block_size.cpp.o"
  "CMakeFiles/bench_fig15_block_size.dir/bench_fig15_block_size.cpp.o.d"
  "bench_fig15_block_size"
  "bench_fig15_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
