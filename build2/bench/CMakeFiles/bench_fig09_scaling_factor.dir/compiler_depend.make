# Empty compiler generated dependencies file for bench_fig09_scaling_factor.
# This may be replaced when dependencies are built.
