file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_scaling_factor.dir/bench_fig09_scaling_factor.cpp.o"
  "CMakeFiles/bench_fig09_scaling_factor.dir/bench_fig09_scaling_factor.cpp.o.d"
  "bench_fig09_scaling_factor"
  "bench_fig09_scaling_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_scaling_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
