
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_p4_aggregator.cpp" "bench/CMakeFiles/bench_fig18_p4_aggregator.dir/bench_fig18_p4_aggregator.cpp.o" "gcc" "bench/CMakeFiles/bench_fig18_p4_aggregator.dir/bench_fig18_p4_aggregator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/omr_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/baselines/CMakeFiles/omr_baselines.dir/DependInfo.cmake"
  "/root/repo/build2/src/innet/CMakeFiles/omr_innet.dir/DependInfo.cmake"
  "/root/repo/build2/src/net/CMakeFiles/omr_net.dir/DependInfo.cmake"
  "/root/repo/build2/src/telemetry/CMakeFiles/omr_telemetry.dir/DependInfo.cmake"
  "/root/repo/build2/src/device/CMakeFiles/omr_device.dir/DependInfo.cmake"
  "/root/repo/build2/src/tensor/CMakeFiles/omr_tensor.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/omr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
