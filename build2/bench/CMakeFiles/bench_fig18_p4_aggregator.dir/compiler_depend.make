# Empty compiler generated dependencies file for bench_fig18_p4_aggregator.
# This may be replaced when dependencies are built.
