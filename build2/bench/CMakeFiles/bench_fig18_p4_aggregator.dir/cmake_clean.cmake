file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_p4_aggregator.dir/bench_fig18_p4_aggregator.cpp.o"
  "CMakeFiles/bench_fig18_p4_aggregator.dir/bench_fig18_p4_aggregator.cpp.o.d"
  "bench_fig18_p4_aggregator"
  "bench_fig18_p4_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_p4_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
