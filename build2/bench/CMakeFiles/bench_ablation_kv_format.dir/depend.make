# Empty dependencies file for bench_ablation_kv_format.
# This may be replaced when dependencies are built.
