# Empty dependencies file for bench_fig04_allreduce_time.
# This may be replaced when dependencies are built.
