file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_multigpu_micro.dir/bench_fig13_multigpu_micro.cpp.o"
  "CMakeFiles/bench_fig13_multigpu_micro.dir/bench_fig13_multigpu_micro.cpp.o.d"
  "bench_fig13_multigpu_micro"
  "bench_fig13_multigpu_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_multigpu_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
