# Empty dependencies file for bench_fig13_multigpu_micro.
# This may be replaced when dependencies are built.
