file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_sparse_methods.dir/bench_fig06_sparse_methods.cpp.o"
  "CMakeFiles/bench_fig06_sparse_methods.dir/bench_fig06_sparse_methods.cpp.o.d"
  "bench_fig06_sparse_methods"
  "bench_fig06_sparse_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_sparse_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
