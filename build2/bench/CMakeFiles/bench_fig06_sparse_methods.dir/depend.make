# Empty dependencies file for bench_fig06_sparse_methods.
# This may be replaced when dependencies are built.
