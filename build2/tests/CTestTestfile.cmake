# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/test_sim[1]_include.cmake")
include("/root/repo/build2/tests/test_net[1]_include.cmake")
include("/root/repo/build2/tests/test_tensor[1]_include.cmake")
include("/root/repo/build2/tests/test_device[1]_include.cmake")
include("/root/repo/build2/tests/test_core[1]_include.cmake")
include("/root/repo/build2/tests/test_baselines[1]_include.cmake")
include("/root/repo/build2/tests/test_compress[1]_include.cmake")
include("/root/repo/build2/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build2/tests/test_innet[1]_include.cmake")
include("/root/repo/build2/tests/test_ddl[1]_include.cmake")
include("/root/repo/build2/tests/test_hierarchical[1]_include.cmake")
include("/root/repo/build2/tests/test_core_extensions[1]_include.cmake")
include("/root/repo/build2/tests/test_integration[1]_include.cmake")
include("/root/repo/build2/tests/test_sparse_kv[1]_include.cmake")
include("/root/repo/build2/tests/test_protocol_stats[1]_include.cmake")
include("/root/repo/build2/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build2/tests/test_session[1]_include.cmake")
include("/root/repo/build2/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build2/tests/test_quantizers[1]_include.cmake")
include("/root/repo/build2/tests/test_trainer_quantizers[1]_include.cmake")
