file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_stats.dir/test_protocol_stats.cpp.o"
  "CMakeFiles/test_protocol_stats.dir/test_protocol_stats.cpp.o.d"
  "test_protocol_stats"
  "test_protocol_stats.pdb"
  "test_protocol_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
