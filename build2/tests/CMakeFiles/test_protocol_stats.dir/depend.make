# Empty dependencies file for test_protocol_stats.
# This may be replaced when dependencies are built.
