# Empty dependencies file for test_trainer_quantizers.
# This may be replaced when dependencies are built.
