file(REMOVE_RECURSE
  "CMakeFiles/test_trainer_quantizers.dir/test_trainer_quantizers.cpp.o"
  "CMakeFiles/test_trainer_quantizers.dir/test_trainer_quantizers.cpp.o.d"
  "test_trainer_quantizers"
  "test_trainer_quantizers.pdb"
  "test_trainer_quantizers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trainer_quantizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
