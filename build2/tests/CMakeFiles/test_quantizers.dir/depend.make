# Empty dependencies file for test_quantizers.
# This may be replaced when dependencies are built.
