file(REMOVE_RECURSE
  "CMakeFiles/test_quantizers.dir/test_quantizers.cpp.o"
  "CMakeFiles/test_quantizers.dir/test_quantizers.cpp.o.d"
  "test_quantizers"
  "test_quantizers.pdb"
  "test_quantizers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
