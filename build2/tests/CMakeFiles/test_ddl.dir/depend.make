# Empty dependencies file for test_ddl.
# This may be replaced when dependencies are built.
