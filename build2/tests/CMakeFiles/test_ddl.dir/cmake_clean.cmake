file(REMOVE_RECURSE
  "CMakeFiles/test_ddl.dir/test_ddl.cpp.o"
  "CMakeFiles/test_ddl.dir/test_ddl.cpp.o.d"
  "test_ddl"
  "test_ddl.pdb"
  "test_ddl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
