file(REMOVE_RECURSE
  "CMakeFiles/test_innet.dir/test_innet.cpp.o"
  "CMakeFiles/test_innet.dir/test_innet.cpp.o.d"
  "test_innet"
  "test_innet.pdb"
  "test_innet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_innet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
