# Empty dependencies file for test_innet.
# This may be replaced when dependencies are built.
