file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_kv.dir/test_sparse_kv.cpp.o"
  "CMakeFiles/test_sparse_kv.dir/test_sparse_kv.cpp.o.d"
  "test_sparse_kv"
  "test_sparse_kv.pdb"
  "test_sparse_kv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
