# Empty dependencies file for test_sparse_kv.
# This may be replaced when dependencies are built.
